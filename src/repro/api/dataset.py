"""The public front door: ``repro.connect`` → :class:`Dataset` → :class:`Session`.

Everything the library can do is reachable through three objects:

* :class:`Dataset` — an opened, finalised store plus its warm statistics.
  Open one from a **snapshot file** (zero-copy ``np.memmap`` load), a
  **generator spec** (``"bsbm:tiny"`` / ``"ldbc:small"`` — the experiment
  scale presets), or an **existing** :class:`~repro.store.TripleStore` /
  :class:`~repro.rdf.Graph`.
* :class:`Session` — per-client execution settings (executor, morsel
  parallelism, timeout, page size) over a shared dataset.  Each session
  owns a :class:`~repro.service.QueryService` — raw query strings go
  through its plan cache and are counted in its serving metrics — and an
  optional worker pool that enforces the timeout budget.
* :class:`~repro.api.cursor.Cursor` — the streaming result: pages of
  decoded rows, bit-identical in concatenation to
  ``QueryEngine.execute(...)``.

Every failure surfaces as a :class:`~repro.api.errors.ReproError` subclass
with a stable machine-readable code — the same taxonomy the HTTP endpoint
(:mod:`repro.api.server`) speaks.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Optional, Union

from ..engine.query_engine import DEFAULT_PAGE_SIZE, QueryEngine, RowStream
from ..obs.analyze import DRIFT_THRESHOLD, render_analyze
from ..obs.slowlog import DEFAULT_SLOW_MS, SlowQueryLog
from ..obs.trace import TraceBuffer, Tracer
from ..rdf.graph import Graph
from ..service.service import QueryService
from ..sparql.parser import ParseError as _SparqlParseError
from ..sparql.tokenizer import TokenizeError as _TokenizeError
from ..store.statistics import StoreStatistics
from ..store.triple_store import TripleStore
from .cursor import Cursor
from .errors import (
    ExecutionError,
    ParseError,
    PlanError,
    QueryTimeout,
    ReproError,
    UpdateError,
)

#: generator specs ``connect`` understands: ``"<benchmark>[:<scale>]"``.
GENERATOR_BENCHMARKS = ("bsbm", "ldbc")

_UNSET = object()


def connect(
    source: Union[str, TripleStore, Graph, "Dataset"],
    **session_options,
) -> "Dataset":
    """Open a dataset — the one-call entry point of the public API.

    ``source`` may be a snapshot file path, a generator spec like
    ``"bsbm:tiny"``, an in-memory :class:`TripleStore` / :class:`Graph`,
    or an already-open :class:`Dataset` (returned as-is).  Keyword options
    become the defaults of every session the dataset opens (see
    :meth:`Dataset.session`).
    """
    if isinstance(source, Dataset):
        return source
    if isinstance(source, (TripleStore, Graph)):
        return Dataset.from_store(source, **session_options)
    if isinstance(source, str):
        if os.path.exists(source):
            return Dataset.from_snapshot(source, **session_options)
        benchmark, _, scale = source.partition(":")
        if benchmark in GENERATOR_BENCHMARKS:
            return Dataset.generate(benchmark, scale or "tiny", **session_options)
        raise ValueError(
            "cannot open %r: not a snapshot file on disk and not a generator "
            "spec (expected '<benchmark>[:<scale>]' with benchmark in %s)"
            % (source, "/".join(GENERATOR_BENCHMARKS))
        )
    raise TypeError(
        "connect() takes a snapshot path, a generator spec, a TripleStore, "
        "a Graph or a Dataset; got %r" % (type(source).__name__,)
    )


class Dataset:
    """An opened store: the shared half of the public API.

    Reads are served off immutable snapshots; SPARQL updates (applied via
    :meth:`update` or a session's ``update``) go through the store's
    single writer lock and publish a new snapshot for later queries.
    """

    def __init__(
        self,
        store: TripleStore,
        statistics: Optional[StoreStatistics] = None,
        source: str = "memory",
        **session_options,
    ):
        store.finalise()
        self.store = store
        self.source = source
        self._session_options = dict(session_options)
        #: the base engine every session derives its sibling from; building
        #: it here collects (or adopts) statistics exactly once per dataset
        self.engine = QueryEngine(store, statistics=statistics)
        self._default_session: Optional[Session] = None
        self._lock = threading.Lock()

    # -- constructors ----------------------------------------------------------

    @classmethod
    def from_snapshot(cls, path: str, **session_options) -> "Dataset":
        """Open a store snapshot zero-copy (mmap indexes, lazy dictionary)."""
        from ..store.snapshot import load_snapshot

        snapshot = load_snapshot(path)
        return cls(
            snapshot.store,
            statistics=snapshot.statistics(),
            source=path,
            **session_options,
        )

    @classmethod
    def generate(cls, benchmark: str, scale: str = "tiny", **session_options) -> "Dataset":
        """Generate one of the benchmark datasets at a named scale preset."""
        from ..experiments import common

        if benchmark == "bsbm":
            dataset = common.bsbm_dataset(common.scale(scale).name)
        elif benchmark == "ldbc":
            dataset = common.ldbc_dataset(common.scale(scale).name)
        else:
            raise ValueError(
                "unknown benchmark %r (have %s)"
                % (benchmark, "/".join(GENERATOR_BENCHMARKS))
            )
        return cls(
            dataset.graph.store,
            source="%s:%s" % (benchmark, scale),
            **session_options,
        )

    @classmethod
    def from_store(cls, store: Union[TripleStore, Graph], **session_options) -> "Dataset":
        """Wrap an existing in-memory store or graph."""
        if isinstance(store, Graph):
            store = store.store
        return cls(store, **session_options)

    # -- sessions --------------------------------------------------------------

    def session(self, **options) -> "Session":
        """A new session; options override the dataset-level defaults."""
        merged = dict(self._session_options)
        merged.update(options)
        return Session(self, **merged)

    def default_session(self) -> "Session":
        """The lazily created shared session behind :meth:`query`."""
        with self._lock:
            if self._default_session is None:
                self._default_session = self.session()
            return self._default_session

    def query(self, query: str, **execute_options) -> Cursor:
        """Execute one query on the shared default session."""
        return self.default_session().execute(query, **execute_options)

    def update(self, request: str):
        """Apply a SPARQL update on the shared default session."""
        return self.default_session().update(request)

    def explain(self, query: str) -> str:
        """The annotated physical plan of ``query`` (default session)."""
        return self.default_session().explain(query)

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Release session resources (worker pools).  The store stays usable."""
        with self._lock:
            session, self._default_session = self._default_session, None
        if session is not None:
            session.close()

    def __enter__(self) -> "Dataset":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __len__(self) -> int:
        return len(self.store)

    def __repr__(self) -> str:
        return "Dataset(source=%r, triples=%d)" % (self.source, len(self.store))


class Session:
    """Per-client execution settings over a shared :class:`Dataset`.

    ``executor`` / ``parallelism`` pick the engine configuration (results
    are bit-identical across all of them); ``timeout`` (seconds) bounds
    each query — planning and eager execution run on a dedicated worker
    thread and are abandoned when the budget is exceeded
    (:class:`QueryTimeout`), and the same budget covers subsequent page
    streaming; ``page_size`` is the default cursor page granularity.

    Observability knobs (all off by default, zero cost when off):
    ``trace_capacity`` > 0 traces every execution and keeps the most
    recent traces in a bounded ring (``session.trace_buffer``, served by
    ``GET /traces``); ``slow_log`` (a path or a
    :class:`~repro.obs.SlowQueryLog`) writes a JSON line for every query
    whose wall-clock time reaches ``slow_query_ms``.  Traced execution is
    bit-identical to untraced execution.

    ``adaptive=True`` turns on feedback-driven optimization (see
    :mod:`repro.adaptive`): every execution is traced, observed
    cardinalities correct future estimates, and cached plans whose mean
    q-error crosses ``drift_threshold`` are re-optimized.  Rows are
    bit-identical either way.
    """

    def __init__(
        self,
        dataset: Dataset,
        executor: Optional[str] = None,
        parallelism: Optional[int] = None,
        timeout: Optional[float] = None,
        page_size: int = DEFAULT_PAGE_SIZE,
        plan_cache_capacity: int = 512,
        trace_capacity: int = 0,
        slow_log=None,
        slow_query_ms: float = DEFAULT_SLOW_MS,
        result_cache_mb: float = 0.0,
        adaptive=False,
        drift_threshold: float = DRIFT_THRESHOLD,
    ):
        self.dataset = dataset
        self.service = QueryService(
            dataset.engine,
            plan_cache_capacity=plan_cache_capacity,
            executor=executor,
            parallelism=parallelism,
            result_cache_mb=result_cache_mb,
            adaptive=adaptive,
            drift_threshold=drift_threshold,
        )
        self.engine = self.service.engine
        #: the materialized answer cache (None when ``result_cache_mb`` is 0)
        self.result_cache = self.service.result_cache
        self.timeout = timeout
        if page_size < 1:
            raise ValueError("page_size must be a positive integer, got %r" % (page_size,))
        self.page_size = page_size
        self.trace_buffer = TraceBuffer(trace_capacity) if trace_capacity > 0 else None
        self._owns_slow_log = slow_log is not None and not isinstance(slow_log, SlowQueryLog)
        if slow_log is None:
            self.slow_log: Optional[SlowQueryLog] = None
        elif isinstance(slow_log, SlowQueryLog):
            self.slow_log = slow_log
        else:
            self.slow_log = SlowQueryLog(slow_log, threshold_ms=slow_query_ms)
        self._closed = False

    # -- planning --------------------------------------------------------------

    def _plan(self, query: str):
        """Parse + optimize through the service's plan cache, error-mapped.

        The cache key is the *verbatim* query text: any normalisation (say,
        whitespace collapsing) would also rewrite whitespace inside string
        literals and let two different queries share one plan — silently
        wrong results.  Reformatted duplicates just miss the cache.
        """
        key = ("sparql", query)
        try:
            plan, hit = self.service.plan_cache.get_or_create(
                key, lambda: self.engine.plan(query)
            )
        except ReproError:
            raise
        except (_SparqlParseError, _TokenizeError) as error:
            raise ParseError(str(error), cause=error) from error
        except (ValueError, KeyError, TypeError) as error:
            raise PlanError(str(error), cause=error) from error
        return plan, hit

    def explain(self, query: str) -> str:
        """The optimized plan annotated with physical operators."""
        plan, _hit = self._plan(query)
        return self.engine.explain(plan)

    def explain_analyze(self, query: str) -> str:
        """Execute ``query`` traced and render the est-vs-actual plan tree.

        Goes through the session's plan cache, so in an adaptive session
        a re-optimized query shows its swapped plan, corrected-vs-raw
        estimates and the "(reoptimized)" marker.
        """
        plan, _hit = self._plan(query)
        tracer = Tracer(self.engine.trace_ids.new_id())
        result = self.engine.execute_plan(plan, tracer=tracer)
        return render_analyze(result.trace, annotate=self.engine.executor.physical_annotation)

    def register_view(self, name: str, query: str):
        """Declare ``query`` as a materialized view for plan substitution.

        Any later plan containing a subtree with the view's fingerprint is
        served from the view's cached batch (refreshed on data-version
        change).  The plan cache is cleared so already-planned queries are
        re-optimized against the extended view registry.
        """
        try:
            view = self.engine.register_view(name, query)
        except ReproError:
            raise
        except (_SparqlParseError, _TokenizeError) as error:
            raise ParseError(str(error), cause=error) from error
        except (ValueError, KeyError, TypeError) as error:
            raise PlanError(str(error), cause=error) from error
        self.service.plan_cache.clear()
        return view

    # -- execution -------------------------------------------------------------

    def execute(
        self,
        query: str,
        limit: Optional[int] = None,
        offset: int = 0,
        page_size: Optional[int] = None,
        timeout: Optional[float] = _UNSET,  # type: ignore[assignment]
        trace_id: Optional[str] = None,
    ) -> Cursor:
        """Execute ``query``; stream the result through a :class:`Cursor`.

        ``limit``/``offset`` are pushed down into the plan as an id-space
        slice before anything is decoded.  ``timeout`` overrides the
        session budget for this call (``None`` disables it).  ``trace_id``
        names the trace when session tracing is enabled (the HTTP server
        propagates ``X-Repro-Trace-Id`` this way); otherwise ids come from
        the engine's (optionally seeded) generator.
        """
        budget = self.timeout if timeout is _UNSET else timeout
        started = time.monotonic()
        deadline = started + budget if budget is not None else None
        step = page_size if page_size is not None else self.page_size
        if step < 1:
            raise ValueError("page_size must be a positive integer, got %r" % (step,))

        def run() -> RowStream:
            wall_started = time.perf_counter()
            plan, hit = self._plan(query)
            adaptive = self.service.adaptive
            tracer = None
            if self.trace_buffer is not None or adaptive is not None:
                # Adaptive sessions trace every execution — the spans feed
                # the cardinality corrections; the trace only enters the
                # ring buffer when session tracing is also on.
                tracer = Tracer(trace_id or self.engine.trace_ids.new_id())
            try:
                if tracer is not None:
                    stream = self.engine.execute_plan_iter(
                        plan, page_size=step, tracer=tracer, limit=limit, offset=offset
                    )
                else:
                    stream = self.engine.execute_plan_iter(
                        plan, page_size=step, limit=limit, offset=offset
                    )
            except ReproError:
                raise
            except Exception as error:
                raise ExecutionError(str(error), cause=error) from error
            stream.plan_cached = hit
            wall_seconds = time.perf_counter() - wall_started
            self.service.metrics.record_execution(
                stream.runtime_ms, wall_seconds, in_batch=False
            )
            if stream.trace is not None:
                stream.trace.query = query
                if self.trace_buffer is not None:
                    self.trace_buffer.append(stream.trace)
            adaptive_summary = None
            if adaptive is not None:
                adaptive_summary = adaptive.observe(
                    ("sparql", query),
                    template="sparql",
                    plan=plan,
                    result=stream,
                    replan=lambda: self.engine.plan(query),
                )
            if self.slow_log is not None:
                self.slow_log.observe(
                    wall_seconds * 1000.0,
                    query=query,
                    runtime_ms=stream.runtime_ms,
                    rows=stream.profile.result_rows,
                    trace_id=stream.trace.trace_id if stream.trace is not None else None,
                    executor=self.engine.executor_name,
                    cache_hit=stream.result_cached,
                    plan_cache_hit=hit,
                    reoptimized=(
                        adaptive_summary["reoptimized"] if adaptive_summary else None
                    ),
                    mean_q_error=(
                        adaptive_summary["mean_q_error"] if adaptive_summary else None
                    ),
                )
            return stream

        if budget is None:
            stream = run()
        else:
            stream = self._run_with_timeout(run, budget)
        return Cursor(stream, deadline=deadline)

    def _run_with_timeout(self, run, budget: float) -> RowStream:
        """Run ``run()`` on a dedicated daemon thread, bounded by ``budget``.

        One thread *per timed query*, not a fixed pool: a pool's workers
        would stay occupied by abandoned (timed-out but still running)
        executions, and once all were zombies every later request — however
        cheap — would starve behind them and time out spuriously.  An
        abandoned thread finishes on its own and frees itself; it cannot
        block anybody else.
        """
        if self._closed:
            raise RuntimeError("session is closed")
        outcome: dict = {}
        done = threading.Event()

        def target():
            try:
                outcome["stream"] = run()
            except BaseException as error:  # re-raised on the caller thread
                outcome["error"] = error
            finally:
                done.set()

        threading.Thread(
            target=target, name="repro-session-query", daemon=True
        ).start()
        if not done.wait(budget):
            raise QueryTimeout("query exceeded the %.3fs timeout budget" % budget)
        if "error" in outcome:
            raise outcome["error"]
        return outcome["stream"]

    def update(self, request: str):
        """Apply a SPARQL update request (INSERT DATA / DELETE DATA / DELETE WHERE).

        Runs under the store's single writer lock; queries already
        executing (and cursors already opened) keep reading their pinned
        snapshot and are unaffected.  Returns the
        :class:`~repro.engine.query_engine.UpdateResult` with the effective
        triple counts and the new ``data_version``.  Grammar failures raise
        :class:`ParseError`; apply-phase failures raise :class:`UpdateError`.
        """
        if self._closed:
            raise RuntimeError("session is closed")
        try:
            return self.service.update(request)
        except ReproError:
            raise
        except (_SparqlParseError, _TokenizeError) as error:
            raise ParseError(str(error), cause=error) from error
        except Exception as error:
            raise UpdateError(str(error), cause=error) from error

    def metrics(self) -> dict:
        """Serving metrics + plan-cache statistics of this session."""
        return self.service.service_stats()

    def traces(self) -> list:
        """The retained traces, oldest first (empty unless tracing is on)."""
        if self.trace_buffer is None:
            return []
        return self.trace_buffer.snapshot()

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Mark the session closed (timed executions are refused).  Idempotent."""
        self._closed = True
        if self._owns_slow_log and self.slow_log is not None:
            self.slow_log.close()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return "Session(%r, executor=%r, parallelism=%d, timeout=%r)" % (
            self.dataset.source,
            self.engine.executor_name,
            self.engine.parallelism,
            self.timeout,
        )
