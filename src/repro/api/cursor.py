"""Streaming result cursor.

A :class:`Cursor` wraps the engine's :class:`~repro.engine.RowStream`: the
query has already executed in id space (plan, profile and simulated runtime
are available immediately), but rows decode to RDF terms lazily, page by
page, as the cursor is consumed — a memory-bounded consumer never holds
more than one page of materialised terms.  Iteration yields the engine's
native ``{Variable: Term}`` solution mappings, bit-identical to
``QueryEngine.execute(...)`` for the same query.
"""

from __future__ import annotations

import time
from typing import Dict, Iterator, List, Optional

from ..engine.query_engine import RowStream
from ..rdf.terms import Term, Variable
from .errors import QueryTimeout

Binding = Dict[Variable, Term]


class Cursor:
    """Iterator over one query's result, streamed page by page."""

    def __init__(self, stream: RowStream, deadline: Optional[float] = None):
        self._stream = stream
        self._pages = stream.pages()
        #: monotonic-clock instant after which further pages raise
        #: :class:`QueryTimeout` (None = no budget)
        self._deadline = deadline
        self._buffer: List[Binding] = []
        self._exhausted = False
        #: rows handed out so far
        self.rows_streamed = 0

    # -- result metadata -------------------------------------------------------

    @property
    def variables(self) -> List[str]:
        """Result variable names, in projection order."""
        return [variable.name for variable in self._stream.variables]

    @property
    def plan(self):
        """The optimized physical plan that produced this result."""
        return self._stream.plan

    @property
    def profile(self):
        """The execution profile (work counters, cardinalities)."""
        return self._stream.profile

    @property
    def runtime_ms(self) -> float:
        """The simulated runtime of the execution."""
        return self._stream.runtime_ms

    @property
    def plan_cached(self) -> bool:
        """True when the plan came from the session's plan cache."""
        return self._stream.plan_cached

    @property
    def result_cached(self) -> bool:
        """True when the result was served from the materialized answer cache."""
        return self._stream.result_cached

    def __len__(self) -> int:
        """Total rows of the result (known before any decoding)."""
        return len(self._stream)

    # -- streaming -------------------------------------------------------------

    def _check_deadline(self) -> None:
        if self._deadline is not None and time.monotonic() > self._deadline:
            raise QueryTimeout("query result streaming exceeded the timeout budget")

    def pages(self) -> Iterator[List[Binding]]:
        """Yield the remaining rows page by page (single use)."""
        while True:
            page = self._next_page()
            if page is None:
                return
            yield page

    def _next_page(self) -> Optional[List[Binding]]:
        if self._buffer:
            page, self._buffer = self._buffer, []
            return page
        if self._exhausted:
            return None
        self._check_deadline()
        for page in self._pages:
            self.rows_streamed += len(page)
            return page
        self._exhausted = True
        return None

    def __iter__(self) -> Iterator[Binding]:
        while True:
            page = self._next_page()
            if page is None:
                return
            yield from page

    def fetchone(self) -> Optional[Binding]:
        """The next row, or ``None`` when the result is exhausted."""
        rows = self.fetchmany(1)
        return rows[0] if rows else None

    def fetchmany(self, count: int) -> List[Binding]:
        """Up to ``count`` further rows (shorter only at the end)."""
        taken: List[Binding] = []
        while len(taken) < count:
            page = self._next_page()
            if page is None:
                break
            need = count - len(taken)
            taken.extend(page[:need])
            if need < len(page):
                self._buffer = page[need:]
        return taken

    def fetchall(self) -> List[Binding]:
        """Every remaining row, materialised."""
        rows: List[Binding] = []
        while True:
            page = self._next_page()
            if page is None:
                return rows
            rows.extend(page)

    def __repr__(self) -> str:
        return "Cursor(rows=%d, streamed=%d, runtime=%.2fms)" % (
            len(self),
            self.rows_streamed,
            self.runtime_ms,
        )
