"""SPARQL 1.1 query-result serialisation: JSON, CSV and TSV.

These are the wire formats of the protocol endpoint
(:mod:`repro.api.server`) and the interop surface of
:meth:`repro.engine.QueryResult.to_json`.  Serializers are *incremental* —
``begin`` / ``rows`` / ``end`` produce the document in pieces so the server
can stream a :class:`~repro.api.cursor.Cursor` page by page over chunked
transfer encoding without ever materialising the full result — and
``serialize`` is the one-shot convenience over the three.

Round-tripping:

* **JSON** (``application/sparql-results+json``) and **TSV**
  (``text/tab-separated-values``) are lossless: :func:`parse_json` /
  :func:`parse_tsv` reconstruct the exact ``{Variable: Term}`` solution
  mappings the engine produced (the equivalence tests assert
  bit-identity through an HTTP round trip).
* **CSV** (``text/csv``) is the spec-mandated *lossy* form — plain lexical
  values, no term kinds — so :func:`parse_csv` returns string cells.

Serializer instances are single-use and not thread-safe (the JSON writer
tracks whether a row separator is due); build one per response.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Type

from ..rdf.ntriples import parse_term
from ..rdf.terms import BNode, IRI, Literal, Term, Variable

#: rows are the engine's solution mappings
Binding = Mapping[Variable, Term]

SPARQL_JSON_TYPE = "application/sparql-results+json"
CSV_TYPE = "text/csv"
TSV_TYPE = "text/tab-separated-values"


# -- term <-> JSON binding objects -------------------------------------------------


def term_to_json(term: Term) -> Dict[str, str]:
    """One term as a SPARQL JSON results binding object."""
    if isinstance(term, IRI):
        return {"type": "uri", "value": term.value}
    if isinstance(term, BNode):
        return {"type": "bnode", "value": term.label}
    if isinstance(term, Literal):
        binding: Dict[str, str] = {"type": "literal", "value": term.lexical}
        if term.language:
            binding["xml:lang"] = term.language
        elif term.datatype is not None:
            binding["datatype"] = term.datatype.value
        return binding
    raise TypeError("cannot serialise term %r" % (term,))


def term_from_json(binding: Mapping[str, str]) -> Term:
    """Rebuild the exact term a binding object describes."""
    kind = binding.get("type")
    value = binding.get("value", "")
    if kind == "uri":
        return IRI(value)
    if kind == "bnode":
        return BNode(value)
    if kind in ("literal", "typed-literal"):
        language = binding.get("xml:lang")
        if language:
            return Literal(value, language=language)
        datatype = binding.get("datatype")
        if datatype:
            return Literal(value, datatype=IRI(datatype))
        return Literal(value)
    raise ValueError("unknown binding type %r" % (kind,))


def _csv_cell(term: Optional[Term]) -> str:
    """The spec's plain-value CSV cell: lexical forms, no term markers."""
    if term is None:
        return ""
    if isinstance(term, IRI):
        return term.value
    if isinstance(term, BNode):
        return "_:%s" % term.label
    return term.lexical


# -- serializers -------------------------------------------------------------------


class ResultSerializer:
    """Incremental writer of one result document (single-use)."""

    format = ""
    content_type = ""

    def begin(self, variables: Sequence[str]) -> str:
        raise NotImplementedError

    def rows(self, rows: Iterable[Binding]) -> str:
        raise NotImplementedError

    def end(self) -> str:
        raise NotImplementedError

    def serialize(self, variables: Sequence[str], rows: Iterable[Binding]) -> str:
        """The whole document in one string."""
        return self.begin(variables) + self.rows(rows) + self.end()


class JSONSerializer(ResultSerializer):
    """``application/sparql-results+json`` (SPARQL 1.1 Query Results JSON)."""

    format = "json"
    content_type = SPARQL_JSON_TYPE

    def __init__(self):
        self._variables: List[str] = []
        self._first = True

    def begin(self, variables: Sequence[str]) -> str:
        self._variables = list(variables)
        self._first = True
        return '{"head": {"vars": %s}, "results": {"bindings": [' % (
            json.dumps(self._variables),
        )

    def rows(self, rows: Iterable[Binding]) -> str:
        parts: List[str] = []
        for row in rows:
            by_name = {variable.name: term for variable, term in row.items()}
            encoded = json.dumps(
                {
                    name: term_to_json(by_name[name])
                    for name in self._variables
                    if name in by_name
                }
            )
            parts.append(encoded if self._first else ", " + encoded)
            self._first = False
        return "".join(parts)

    def end(self) -> str:
        return "]}}"


class CSVSerializer(ResultSerializer):
    """``text/csv`` (SPARQL 1.1 CSV results: plain lexical values)."""

    format = "csv"
    content_type = CSV_TYPE

    def __init__(self):
        self._variables: List[str] = []

    def _write(self, write_row) -> str:
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\r\n")
        write_row(writer)
        return buffer.getvalue()

    def begin(self, variables: Sequence[str]) -> str:
        self._variables = list(variables)
        return self._write(lambda writer: writer.writerow(self._variables))

    def rows(self, rows: Iterable[Binding]) -> str:
        def write(writer):
            for row in rows:
                by_name = {variable.name: term for variable, term in row.items()}
                writer.writerow([_csv_cell(by_name.get(name)) for name in self._variables])

        return self._write(write)

    def end(self) -> str:
        return ""


class TSVSerializer(ResultSerializer):
    """``text/tab-separated-values`` (SPARQL 1.1 TSV: full term syntax)."""

    format = "tsv"
    content_type = TSV_TYPE

    def __init__(self):
        self._variables: List[str] = []

    def begin(self, variables: Sequence[str]) -> str:
        self._variables = list(variables)
        return "\t".join("?" + name for name in self._variables) + "\n"

    def rows(self, rows: Iterable[Binding]) -> str:
        lines: List[str] = []
        for row in rows:
            by_name = {variable.name: term for variable, term in row.items()}
            cells = [
                by_name[name].n3() if name in by_name else ""
                for name in self._variables
            ]
            lines.append("\t".join(cells) + "\n")
        return "".join(lines)

    def end(self) -> str:
        return ""


#: format key -> serializer class (the CLI's ``--format`` choices).
SERIALIZERS: Dict[str, Type[ResultSerializer]] = {
    serializer.format: serializer
    for serializer in (JSONSerializer, CSVSerializer, TSVSerializer)
}

#: media type -> format key, for content negotiation.
MEDIA_TYPES: Dict[str, str] = {
    SPARQL_JSON_TYPE: "json",
    "application/json": "json",
    CSV_TYPE: "csv",
    TSV_TYPE: "tsv",
}


def serializer_for(format_key: str) -> ResultSerializer:
    """A fresh serializer for one of ``json`` / ``csv`` / ``tsv``."""
    try:
        return SERIALIZERS[format_key]()
    except KeyError:
        raise ValueError(
            "unknown result format %r (have %s)" % (format_key, ", ".join(sorted(SERIALIZERS)))
        ) from None


def negotiate(accept_header: Optional[str], explicit: Optional[str] = None) -> Optional[str]:
    """Pick a result format from an ``Accept`` header (or explicit override).

    ``explicit`` (the endpoint's non-standard ``format=`` parameter) wins.
    An absent or wildcard Accept header defaults to SPARQL JSON.  Returns
    ``None`` when the client only accepts media types we cannot produce —
    the server answers 406.
    """
    if explicit:
        return explicit if explicit in SERIALIZERS else None
    if not accept_header:
        return "json"
    for entry in accept_header.split(","):
        media_type = entry.split(";", 1)[0].strip().lower()
        if media_type in ("*/*", "application/*", "text/*"):
            return "json" if media_type != "text/*" else "csv"
        if media_type in MEDIA_TYPES:
            return MEDIA_TYPES[media_type]
    return None


# -- parsers -----------------------------------------------------------------------


def parse_json(document: str) -> Tuple[List[str], List[Dict[Variable, Term]]]:
    """Parse a SPARQL JSON results document back to solution mappings."""
    payload = json.loads(document)
    variables = list(payload["head"]["vars"])
    rows: List[Dict[Variable, Term]] = []
    for binding in payload["results"]["bindings"]:
        rows.append(
            {Variable(name): term_from_json(value) for name, value in binding.items()}
        )
    return variables, rows


def parse_tsv(document: str) -> Tuple[List[str], List[Dict[Variable, Term]]]:
    """Parse a SPARQL TSV results document back to solution mappings."""
    lines = document.split("\n")
    if lines and lines[-1] == "":
        lines.pop()  # the trailing newline, not an (all-unbound) empty row
    if not lines or not lines[0]:
        return [], []
    variables = [cell.lstrip("?$") for cell in lines[0].rstrip("\r").split("\t")]
    rows: List[Dict[Variable, Term]] = []
    for line in lines[1:]:
        cells = line.rstrip("\r").split("\t")
        row: Dict[Variable, Term] = {}
        for name, cell in zip(variables, cells):
            if cell:
                row[Variable(name)] = parse_term(cell)
        rows.append(row)
    return variables, rows


def parse_csv(document: str) -> Tuple[List[str], List[Dict[str, str]]]:
    """Parse a SPARQL CSV results document (lossy: plain string cells)."""
    reader = csv.reader(io.StringIO(document))
    try:
        variables = next(reader)
    except StopIteration:
        return [], []
    rows = [dict(zip(variables, cells)) for cells in reader]
    return variables, rows
