"""A small SPARQL 1.1 Protocol client (stdlib ``urllib`` only).

:class:`RemoteEndpoint` is the client half of :mod:`repro.api.server` and
the transport behind ``repro.cli query --endpoint URL``.  It POSTs queries
as ``application/sparql-query``, negotiates one of the three result
formats, and maps the endpoint's structured error bodies back onto the
exact :class:`~repro.api.errors.ReproError` subclass the server raised —
a remote ``parse_error`` raises :class:`~repro.api.errors.ParseError`
locally, so callers handle local and remote datasets identically.
"""

from __future__ import annotations

import json
from typing import Dict, List, Tuple
from urllib import request as _request
from urllib.error import HTTPError, URLError

from ..rdf.terms import Term, Variable
from .errors import ExecutionError, ReproError, error_for_code
from .results import SERIALIZERS, parse_csv, parse_json, parse_tsv, serializer_for
from .server import SPARQL_QUERY_TYPE, SPARQL_UPDATE_TYPE


class RemoteEndpoint:
    """One SPARQL endpoint, addressed by its query URL."""

    def __init__(self, url: str, timeout: float = 60.0):
        if not url.startswith(("http://", "https://")):
            raise ValueError("endpoint URL must be http(s)://, got %r" % url)
        #: the query endpoint; a bare host URL gets /sparql appended
        self.url = url if url.rstrip("/").endswith("/sparql") else url.rstrip("/") + "/sparql"
        self.timeout = timeout

    # -- transport -------------------------------------------------------------

    def query_raw(self, query: str, format: str = "json") -> str:
        """Execute ``query`` remotely; return the serialized result document.

        Protocol errors re-raise as the matching :class:`ReproError`
        subclass; transport failures raise :class:`ExecutionError`.
        """
        serializer = serializer_for(format)  # validates the format key
        payload = query.encode("utf-8")
        http_request = _request.Request(
            self.url,
            data=payload,
            headers={
                "Content-Type": SPARQL_QUERY_TYPE,
                "Accept": serializer.content_type,
            },
            method="POST",
        )
        try:
            with _request.urlopen(http_request, timeout=self.timeout) as response:
                return response.read().decode("utf-8")
        except HTTPError as error:
            raise self._protocol_error(error) from error
        except URLError as error:
            raise ExecutionError(
                "cannot reach endpoint %s: %s" % (self.url, error.reason), cause=error
            ) from error

    def _protocol_error(self, error: HTTPError) -> ReproError:
        """Rebuild the server's exception from its structured error body."""
        try:
            body = json.loads(error.read().decode("utf-8"))
            details = body["error"]
            return error_for_code(details["code"], details["message"])
        except (ValueError, KeyError, TypeError):
            return ExecutionError(
                "endpoint %s answered HTTP %d" % (self.url, error.code), cause=error
            )

    def update(self, update: str) -> dict:
        """Apply a SPARQL update remotely; return the endpoint's JSON summary.

        POSTs the text as ``application/sparql-update``; the response dict
        carries ``inserted``, ``deleted``, ``operations`` and the new
        ``data_version``.  Protocol errors re-raise as the matching
        :class:`ReproError` subclass, exactly like :meth:`query_raw`.
        """
        http_request = _request.Request(
            self.url,
            data=update.encode("utf-8"),
            headers={"Content-Type": SPARQL_UPDATE_TYPE},
            method="POST",
        )
        try:
            with _request.urlopen(http_request, timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except HTTPError as error:
            raise self._protocol_error(error) from error
        except URLError as error:
            raise ExecutionError(
                "cannot reach endpoint %s: %s" % (self.url, error.reason), cause=error
            ) from error

    # -- parsed results --------------------------------------------------------

    def query(self, query: str) -> Tuple[List[str], List[Dict[Variable, Term]]]:
        """Execute remotely and parse the rows back to solution mappings.

        Uses SPARQL JSON under the hood (lossless), so the returned rows
        are bit-identical to what a local session streams for the same
        query against the same data.
        """
        return parse_json(self.query_raw(query, "json"))

    def query_tsv(self, query: str) -> Tuple[List[str], List[Dict[Variable, Term]]]:
        """Like :meth:`query` but over the TSV wire format (also lossless)."""
        return parse_tsv(self.query_raw(query, "tsv"))

    def query_csv(self, query: str) -> Tuple[List[str], List[Dict[str, str]]]:
        """The CSV wire format: plain string cells (lossy by design)."""
        return parse_csv(self.query_raw(query, "csv"))

    def health(self) -> dict:
        """The endpoint's ``/healthz`` document."""
        return self._get_json("/healthz")

    def metrics(self) -> dict:
        """The endpoint's ``/metrics`` document."""
        return self._get_json("/metrics")

    def _get_json(self, path: str) -> dict:
        base = self.url.rsplit("/sparql", 1)[0]
        try:
            with _request.urlopen(base + path, timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except HTTPError as error:
            raise self._protocol_error(error) from error
        except URLError as error:
            raise ExecutionError(
                "cannot reach endpoint %s: %s" % (base + path, error.reason), cause=error
            ) from error

    def __repr__(self) -> str:
        return "RemoteEndpoint(%r)" % self.url


#: formats the CLI's --format flag accepts (mirrors the serializers).
FORMATS = tuple(sorted(SERIALIZERS))
