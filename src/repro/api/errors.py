"""The public exception hierarchy of the facade and the protocol endpoint.

Every error the public API raises is a :class:`ReproError` carrying a
*stable, machine-readable* ``code`` — the same code the HTTP endpoint puts
in its JSON error bodies, so remote clients can re-raise the exact local
exception class (:func:`error_for_code`).  The hierarchy mirrors the query
lifecycle:

* :class:`ParseError` — the query text does not conform to the grammar
  (also a :class:`repro.sparql.parser.ParseError`, so existing handlers
  keep working),
* :class:`PlanError` — the query parsed but cannot be planned (unbound
  template parameters, unsupported shapes, unknown prefixes),
* :class:`ExecutionError` — the plan failed while executing,
* :class:`QueryTimeout` — the execution exceeded the session/request
  timeout budget.
"""

from __future__ import annotations

from typing import Dict, Optional, Type

from ..sparql.parser import ParseError as _SparqlParseError


class ReproError(Exception):
    """Base class of every error the public API raises.

    ``code`` is stable across releases (clients may dispatch on it);
    ``http_status`` is the status the SPARQL endpoint answers with.
    """

    code = "error"
    http_status = 500

    def __init__(self, message: str, cause: Optional[BaseException] = None):
        super().__init__(message)
        self.message = message
        #: the underlying exception, when the error wraps a lower layer's
        self.cause = cause

    def as_dict(self) -> Dict[str, str]:
        """The structured form the HTTP endpoint serialises (and clients parse)."""
        return {"code": self.code, "message": self.message}

    def __str__(self) -> str:
        return self.message


class ParseError(ReproError, _SparqlParseError):
    """The query text is not valid SPARQL (for this subset)."""

    code = "parse_error"
    http_status = 400


class PlanError(ReproError):
    """The query parsed but could not be planned."""

    code = "plan_error"
    http_status = 400


class ExecutionError(ReproError):
    """The plan failed during execution."""

    code = "execution_error"
    http_status = 500


class QueryTimeout(ReproError):
    """The execution exceeded the configured timeout budget."""

    code = "query_timeout"
    http_status = 503


class UpdateError(ReproError):
    """A SPARQL update request failed to apply.

    Parse failures in update text still raise :class:`ParseError`; this
    covers the apply phase — an operation the store refuses (for example a
    writer racing a snapshot re-adoption) or an executor-level failure.
    """

    code = "update_error"
    http_status = 500


class BadRequestError(ReproError):
    """A malformed protocol request (missing query, bad media type...)."""

    code = "bad_request"
    http_status = 400


class ServerOverloadedError(ReproError):
    """The server shed this request at its admission-control front door.

    Raised (and answered as a 503 with a ``Retry-After`` header) when the
    bounded in-flight budget plus backlog is exhausted, when the request
    waited out its queue budget, when one client exceeds its fair share,
    or when the server is draining for shutdown.  ``queue_depth`` (requests
    waiting at shed time) and ``reason`` travel in the structured body so
    clients can back off intelligently.
    """

    code = "overloaded"
    http_status = 503

    def __init__(
        self,
        message: str,
        cause: Optional[BaseException] = None,
        reason: Optional[str] = None,
        queue_depth: Optional[int] = None,
        retry_after: int = 1,
    ):
        super().__init__(message, cause=cause)
        self.reason = reason
        self.queue_depth = queue_depth
        self.retry_after = retry_after

    def as_dict(self) -> Dict[str, str]:
        payload = super().as_dict()
        if self.reason is not None:
            payload["reason"] = self.reason
        if self.queue_depth is not None:
            payload["queue_depth"] = self.queue_depth  # type: ignore[assignment]
        return payload


#: code -> exception class, for re-raising protocol errors client-side.
ERRORS_BY_CODE: Dict[str, Type[ReproError]] = {
    error.code: error
    for error in (
        ReproError,
        ParseError,
        PlanError,
        ExecutionError,
        QueryTimeout,
        UpdateError,
        BadRequestError,
        ServerOverloadedError,
    )
}


def error_for_code(code: str, message: str) -> ReproError:
    """Rebuild the exception a structured error body describes.

    Unknown codes (a newer server, say) degrade to the base
    :class:`ReproError` rather than failing the client.
    """
    return ERRORS_BY_CODE.get(code, ReproError)(message)
