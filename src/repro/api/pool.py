"""Multi-process sharded serving: a prefork worker pool over one snapshot.

One CPython process caps the engine's throughput no matter how good the
morsel-driven vectorized executor is — the GIL serializes every concurrent
query behind one interpreter.  :class:`WorkerPool` is the classic prefork
answer, built from two ingredients the codebase already has:

* the **zero-copy mmap snapshot** (:mod:`repro.store.snapshot`): every
  worker process opens the *same* snapshot file and adopts its index
  columns as ``np.memmap`` views, so the OS page cache backs all workers
  with ~one physical copy of the store regardless of worker count;
* the **stdlib SPARQL endpoint** (:mod:`repro.api.server`): each worker
  runs the unchanged protocol server — admission control, load-shedding
  503s, chunked streaming, graceful drain — over a *shared listening
  socket*.

Architecture::

    parent process                      worker processes (N)
    --------------                      --------------------
    bind + listen once      --fork-->   accept() on the inherited socket
    verify snapshot CRC once            mmap the same snapshot (CRC cached)
    supervise (restart-on-crash)        serve /sparql with the front door
    aggregate metrics       <--pipes--> publish MetricsRegistry dumps
    rolling SIGTERM drain   --------->  finish in-flight streams, exit

The parent opens the listening socket once and forks N workers that all
``accept()`` on it concurrently — the kernel load-balances connections
across blocked acceptors.  When ``fork`` is unavailable (spawn-only
platforms) each worker binds its own ``SO_REUSEPORT`` socket to the same
address instead.

**Supervision.**  A worker that dies unexpectedly is restarted with
exponential backoff (its final metrics are folded into a *retired*
accumulator first, so counters never go backwards).  ``shutdown()``
performs a rolling drain: workers are asked to drain one at a time
(SIGTERM + a ``drain`` control command), each finishing its in-flight
streamed responses within the drain deadline before the next is touched.

**Metrics stay truthful under sharding.**  Every worker periodically
publishes a structured dump of its registries (HTTP counters + session
instruments) over its control pipe.  When any worker receives ``GET
/metrics`` (or ``/healthz``) it asks the parent over a scrape pipe; the
parent requests fresh dumps from every live worker, merges them with the
retired accumulator (counters and histograms sum exactly — see
:func:`repro.obs.registry.merge_dumps`) and hands back one document whose
``aggregate`` equals the sum of its per-worker parts by construction.
``/healthz`` gains ``workers_expected`` / ``workers_alive`` so rolling
restarts and crashes are observable.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import socket
import threading
import time
from multiprocessing.connection import Connection
from typing import Dict, List, Optional

from ..obs.registry import counter_total, dump_registries, flatten_dump, merge_dumps
from .server import DEFAULT_DRAIN_TIMEOUT, DEFAULT_PORT, SparqlServer

#: how often each worker pushes its metrics dump to the parent (seconds);
#: also the worst-case staleness of a crashed worker's retired counters.
DEFAULT_PUBLISH_INTERVAL = 0.25

#: how long the parent waits for fresh dumps when aggregating a scrape.
COLLECT_TIMEOUT = 1.0

#: how long a worker's /metrics handler waits for the parent's aggregate
#: before degrading to its local-only document.
SCRAPE_TIMEOUT = 2.0

#: listen(2) backlog of the shared socket.
LISTEN_BACKLOG = 128

#: restart backoff: base * 2^consecutive_failures, capped.
RESTART_BACKOFF_BASE = 0.05
RESTART_BACKOFF_CAP = 2.0

#: a worker alive this long resets its consecutive-failure count.
STABLE_SECONDS = 5.0


class PoolError(RuntimeError):
    """The pool cannot be built or started as configured."""


# -- worker process ------------------------------------------------------------


class _WorkerConfig:
    """The picklable bundle a worker process is born with."""

    def __init__(
        self,
        slot: int,
        source: str,
        host: str,
        port: int,
        endpoint_path: str,
        verbose: bool,
        publish_interval: float,
        server_options: Dict,
    ):
        self.slot = slot
        self.source = source
        self.host = host
        self.port = port
        self.endpoint_path = endpoint_path
        self.verbose = verbose
        self.publish_interval = publish_interval
        self.server_options = server_options


class _PoolWorkerClient:
    """The worker-side handle to the parent's control plane.

    The HTTP handler thread serving ``/metrics`` or ``/healthz`` calls
    this; it round-trips the scrape pipe under a lock (one outstanding
    scrape per worker).  ``None`` means the parent did not answer in time
    — the server then degrades to its local document instead of hanging
    the operational endpoint.
    """

    def __init__(self, slot: int, scrape_connection: Connection, timeout: float = SCRAPE_TIMEOUT):
        self.slot = slot
        self._connection = scrape_connection
        self._lock = threading.Lock()
        self._timeout = timeout

    def _ask(self, operation: str) -> Optional[dict]:
        with self._lock:
            try:
                self._connection.send({"op": operation})
                if self._connection.poll(self._timeout):
                    reply = self._connection.recv()
                    return reply.get("doc")
            except (OSError, EOFError, BrokenPipeError):
                pass
            return None

    def metrics_document(self) -> Optional[dict]:
        document = self._ask("metrics")
        if document is not None:
            document["worker"] = self.slot
        return document

    def health_overlay(self) -> Optional[dict]:
        overlay = self._ask("health")
        if overlay is not None:
            overlay["worker"] = self.slot
        return overlay

    def publish_update(self, update: str) -> bool:
        """Forward a locally-applied update for journaling and fan-out.

        The parent appends the update text to its journal (replayed into
        restarted workers) and broadcasts it to every sibling.  Returns
        ``False`` when the parent did not acknowledge in time — the local
        apply stands either way; an unreachable parent means the pool is
        dying, not that the answered request was wrong.
        """
        with self._lock:
            try:
                self._connection.send({"op": "update", "text": update})
                if self._connection.poll(self._timeout):
                    reply = self._connection.recv()
                    return bool(reply.get("doc"))
            except (OSError, EOFError, BrokenPipeError):
                pass
            return False


def _worker_dump(server: SparqlServer) -> Dict[str, Dict]:
    registries = [server.registry, server.session.service.metrics.registry]
    if server.session.result_cache is not None:
        registries.append(server.session.result_cache.registry)
    return dump_registries(registries)


def _worker_main(
    config: _WorkerConfig,
    control_connection: Connection,
    scrape_connection: Connection,
    listen_socket: Optional[socket.socket],
) -> None:
    """Entry point of one worker process: map, accept, serve, drain."""
    if listen_socket is None:
        listen_socket = _reuseport_socket(config.host, config.port)

    server = SparqlServer(
        config.source,
        endpoint_path=config.endpoint_path,
        verbose=config.verbose,
        listen_socket=listen_socket,
        pool_client=_PoolWorkerClient(config.slot, scrape_connection),
        **config.server_options,
    )

    send_lock = threading.Lock()
    sequence = [0]

    def push_metrics() -> None:
        payload = _worker_dump(server)
        with send_lock:
            sequence[0] += 1
            control_connection.send(
                {"type": "metrics", "seq": sequence[0], "payload": payload}
            )

    drained = threading.Event()
    drain_started = threading.Lock()

    def drain() -> None:
        # Idempotent: the first trigger (SIGTERM, drain command, or parent
        # death) wins; shutdown() must not run on the serving thread.
        if not drain_started.acquire(blocking=False):
            return

        def run() -> None:
            try:
                server.shutdown()
            finally:
                drained.set()

        threading.Thread(target=run, name="repro-worker-drain", daemon=True).start()

    def handle_signal(_signum, _frame) -> None:
        drain()

    # SIGTERM is the rolling-drain signal; SIGINT arrives for the whole
    # process group on Ctrl-C, and draining on it keeps workers correct
    # even if the parent dies before orchestrating the drain.
    signal.signal(signal.SIGTERM, handle_signal)
    signal.signal(signal.SIGINT, handle_signal)

    def control_loop() -> None:
        while True:
            try:
                if control_connection.poll(config.publish_interval):
                    command = control_connection.recv()
                    operation = command.get("op")
                    if operation == "report":
                        push_metrics()
                    elif operation == "update":
                        # A sibling's update (or a journal replay after a
                        # restart): apply locally, do NOT re-publish — the
                        # parent already journaled it.  The operations are
                        # idempotent, so replays and races converge.
                        try:
                            server.session.update(command.get("text", ""))
                        except Exception:
                            pass  # a malformed replay must not kill the worker
                    elif operation == "drain":
                        push_metrics()
                        drain()
                else:
                    push_metrics()
            except (EOFError, OSError, BrokenPipeError):
                # The parent is gone: do not serve unsupervised forever.
                drain()
                return

    threading.Thread(target=control_loop, name="repro-worker-control", daemon=True).start()

    try:
        server.serve_forever()
    finally:
        # serve_forever returns as soon as the accept loop stops; the drain
        # (bounded by the server's drain_timeout) may still be finishing
        # in-flight streams — wait for it so exiting never truncates one.
        if drain_started.acquire(blocking=False):
            # shutdown() came from outside serve_forever (tests); nothing to wait for
            drained.set()
        drained.wait(timeout=server.drain_timeout + 5.0)
        try:
            push_metrics()  # final counts, so the parent's retired bucket is exact
        except (OSError, BrokenPipeError):
            pass
        control_connection.close()


def _reuseport_socket(host: str, port: int) -> socket.socket:
    if not hasattr(socket, "SO_REUSEPORT"):  # pragma: no cover - platform
        raise PoolError(
            "this platform offers neither fork (shared inherited socket) "
            "nor SO_REUSEPORT; a multi-process pool cannot share the port"
        )
    opened = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    opened.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
    opened.bind((host, port))
    opened.listen(LISTEN_BACKLOG)
    return opened


# -- parent process ------------------------------------------------------------


class _WorkerRecord:
    """Parent-side state of one worker slot."""

    def __init__(self, slot: int):
        self.slot = slot
        self.process: Optional[multiprocessing.process.BaseProcess] = None
        self.control: Optional[Connection] = None
        self.scrape: Optional[Connection] = None
        self.send_lock = threading.Lock()
        self.latest_seq = 0
        self.latest_payload: Optional[Dict] = None
        self.started_at = 0.0
        self.consecutive_failures = 0

    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    def send_command(self, command: dict) -> bool:
        connection = self.control
        if connection is None:
            return False
        with self.send_lock:
            try:
                connection.send(command)
                return True
            except (OSError, BrokenPipeError):
                return False


class WorkerPool:
    """N forked SPARQL workers accepting on one socket over one snapshot.

    ``source`` must be a string ``connect()`` understands — a snapshot
    path (the intended, zero-copy case: every worker maps the same file)
    or a generator spec like ``"bsbm:tiny"`` (each worker generates its
    own copy; fine for tests, memory-multiplying at scale).

    ``server_options`` are passed to every worker's
    :class:`~repro.api.server.SparqlServer` — session options (executor,
    parallelism, timeout, page size...) and the admission-control knobs
    (``max_inflight``, ``admission_queue``, ``queue_timeout``,
    ``drain_timeout``) alike, so the front door is enforced per worker.
    """

    def __init__(
        self,
        source: str,
        workers: int = 2,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        endpoint_path: str = "/sparql",
        verbose: bool = False,
        publish_interval: float = DEFAULT_PUBLISH_INTERVAL,
        drain_timeout: float = DEFAULT_DRAIN_TIMEOUT,
        restart: bool = True,
        **server_options,
    ):
        if not isinstance(source, str):
            raise PoolError(
                "a worker pool needs a re-openable source (snapshot path or "
                "generator spec), not an in-memory %s" % type(source).__name__
            )
        if workers < 1:
            raise PoolError("workers must be >= 1, got %d" % workers)
        self.source = source
        self.workers_expected = workers
        self.host = host
        self.endpoint_path = endpoint_path
        self.verbose = verbose
        self.publish_interval = publish_interval
        self.drain_timeout = drain_timeout
        self.restart = restart
        self._server_options = dict(server_options)
        self._server_options.setdefault("drain_timeout", drain_timeout)
        self._requested_port = port

        start_methods = multiprocessing.get_all_start_methods()
        self._use_fork = "fork" in start_methods
        self._context = multiprocessing.get_context("fork" if self._use_fork else "spawn")

        self._listen_socket: Optional[socket.socket] = None
        self._port: Optional[int] = None
        self._records: List[_WorkerRecord] = []
        self._threads: List[threading.Thread] = []
        self._collect_lock = threading.Lock()
        self._collect_condition = threading.Condition()
        self._retired: Dict[str, Dict] = {}
        self._retired_lock = threading.Lock()
        #: every update text any worker applied, in commit order — replayed
        #: into restarted workers so they converge with their siblings.
        self._update_journal: List[str] = []
        self._journal_lock = threading.Lock()
        self._restarts_total = 0
        self._started = False
        self._stopping = threading.Event()
        self._stopped = threading.Event()

    # -- addresses -------------------------------------------------------------

    @property
    def address(self):
        """The bound ``(host, port)`` — the real port even when 0 was asked."""
        if self._port is None:
            raise PoolError("pool is not started")
        return (self.host, self._port)

    @property
    def url(self) -> str:
        host, port = self.address
        return "http://%s:%d%s" % (host, port, self.endpoint_path)

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> "WorkerPool":
        """Bind the socket, verify the snapshot once, fork the workers."""
        if self._started:
            return self
        self._started = True

        # Fail fast on a bad snapshot and warm the per-process CRC cache:
        # forked workers inherit it, so N workers verify the file once total.
        if os.path.exists(self.source):
            from ..store.snapshot import verify_snapshot

            verify_snapshot(self.source)

        if self._use_fork:
            self._listen_socket = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            self._listen_socket.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            self._listen_socket.bind((self.host, self._requested_port))
            self._listen_socket.listen(LISTEN_BACKLOG)
            self._port = self._listen_socket.getsockname()[1]
        else:
            # Spawned workers each bind their own SO_REUSEPORT socket; a
            # throwaway bind resolves an ephemeral port request first.
            probe = _reuseport_socket(self.host, self._requested_port)
            self._port = probe.getsockname()[1]
            probe.close()

        for slot in range(self.workers_expected):
            record = _WorkerRecord(slot)
            self._records.append(record)
            self._spawn(record)

        supervisor = threading.Thread(
            target=self._supervise, name="repro-pool-supervisor", daemon=True
        )
        supervisor.start()
        self._threads.append(supervisor)
        return self

    def _spawn(self, record: _WorkerRecord) -> None:
        control_parent, control_child = self._context.Pipe(duplex=True)
        scrape_parent, scrape_child = self._context.Pipe(duplex=True)
        config = _WorkerConfig(
            slot=record.slot,
            source=self.source,
            host=self.host,
            port=self._port,
            endpoint_path=self.endpoint_path,
            verbose=self.verbose,
            publish_interval=self.publish_interval,
            server_options=self._server_options,
        )
        process = self._context.Process(
            target=_worker_main,
            args=(
                config,
                control_child,
                scrape_child,
                self._listen_socket if self._use_fork else None,
            ),
            name="repro-sparql-worker-%d" % record.slot,
        )
        process.start()
        control_child.close()
        scrape_child.close()
        record.process = process
        record.control = control_parent
        record.scrape = scrape_parent
        record.latest_seq = 0
        record.latest_payload = None
        record.started_at = time.monotonic()

        reader = threading.Thread(
            target=self._read_publications,
            args=(record, control_parent),
            name="repro-pool-reader-%d" % record.slot,
            daemon=True,
        )
        reader.start()
        scraper = threading.Thread(
            target=self._serve_scrapes,
            args=(record, scrape_parent),
            name="repro-pool-scraper-%d" % record.slot,
            daemon=True,
        )
        scraper.start()
        self._threads.extend([reader, scraper])

        # A restarted worker maps the original snapshot, missing every
        # update its siblings already applied: replay the journal (pipe
        # writes queue until the worker's control loop starts reading).
        with self._journal_lock:
            for text in self._update_journal:
                record.send_command({"op": "update", "text": text})

    # -- parent-side control plane ---------------------------------------------

    def _read_publications(self, record: _WorkerRecord, connection: Connection) -> None:
        """Drain one worker's pushes; the freshest dump wins."""
        while True:
            try:
                message = connection.recv()
            except (EOFError, OSError):
                return
            if message.get("type") == "metrics":
                with self._collect_condition:
                    if message["seq"] > record.latest_seq or record.latest_payload is None:
                        record.latest_seq = message["seq"]
                        record.latest_payload = message["payload"]
                    self._collect_condition.notify_all()

    def _serve_scrapes(self, record: _WorkerRecord, connection: Connection) -> None:
        """Answer one worker's /metrics and /healthz aggregate requests."""
        while True:
            try:
                message = connection.recv()
            except (EOFError, OSError):
                return
            operation = message.get("op")
            if operation == "metrics":
                document = self.metrics()
            elif operation == "health":
                document = self.health()
            elif operation == "update":
                document = self._replicate_update(record, message.get("text", ""))
            else:
                document = None
            try:
                connection.send({"doc": document})
            except (OSError, BrokenPipeError):
                return

    def _replicate_update(self, origin: _WorkerRecord, text: str) -> dict:
        """Journal one worker's committed update and fan it out to siblings.

        The journal lock serialises appends against :meth:`_spawn`'s
        replay, so a restarting worker either receives an update through
        the replay or through the broadcast — never neither.  (Receiving
        it through both is harmless: the update operations are idempotent.)
        """
        if not text:
            return {}
        with self._journal_lock:
            self._update_journal.append(text)
            for record in self._records:
                if record.slot != origin.slot and record.alive():
                    record.send_command({"op": "update", "text": text})
            return {"applied": True, "journal_length": len(self._update_journal)}

    def _supervise(self) -> None:
        """Restart crashed workers (with backoff); fold their final counts."""
        while not self._stopping.is_set():
            # Keyed on "has a process", not "is alive": a worker that died
            # while a sibling was being reaped must still be noticed — its
            # sentinel is ready immediately.
            sentinels = {
                record.process.sentinel: record
                for record in self._records
                if record.process is not None
            }
            if not sentinels:
                if self._stopping.wait(0.2):
                    return
                continue
            ready = multiprocessing.connection.wait(list(sentinels), timeout=0.2)
            for sentinel in ready:
                record = sentinels[sentinel]
                if self._stopping.is_set():
                    return
                self._reap(record)

    def _reap(self, record: _WorkerRecord) -> None:
        process = record.process
        if process is None:
            return
        process.join(timeout=1.0)
        uptime = time.monotonic() - record.started_at
        self._fold_into_retired(record)
        for connection in (record.control, record.scrape):
            if connection is not None:
                try:
                    connection.close()
                except OSError:
                    pass
        record.control = record.scrape = None
        record.process = None
        if not self.restart or self._stopping.is_set():
            return
        if uptime >= STABLE_SECONDS:
            record.consecutive_failures = 0
        backoff = min(
            RESTART_BACKOFF_CAP, RESTART_BACKOFF_BASE * (2 ** record.consecutive_failures)
        )
        record.consecutive_failures += 1
        self._restarts_total += 1
        if self._stopping.wait(backoff):
            return
        self._spawn(record)

    def _fold_into_retired(self, record: _WorkerRecord) -> None:
        """Accumulate a dead worker's last published dump, then forget it.

        Retired counts keep the aggregate monotonic across restarts; at
        worst one publish interval of increments is lost when a worker is
        killed without warning.
        """
        with self._collect_condition:
            payload, record.latest_payload, record.latest_seq = (
                record.latest_payload,
                None,
                0,
            )
        if payload:
            with self._retired_lock:
                self._retired = merge_dumps([self._retired, payload])

    # -- aggregation -----------------------------------------------------------

    def _collect_fresh(self, timeout: float = COLLECT_TIMEOUT) -> Dict[int, Dict]:
        """Ask every live worker for a fresh dump; wait (bounded) for them."""
        with self._collect_lock:
            with self._collect_condition:
                watermarks = {
                    record.slot: record.latest_seq
                    for record in self._records
                    if record.alive()
                }
            for record in self._records:
                if record.alive():
                    record.send_command({"op": "report"})
            deadline = time.monotonic() + timeout
            with self._collect_condition:
                while True:
                    pending = [
                        record
                        for record in self._records
                        if record.alive()
                        and record.slot in watermarks
                        and record.latest_seq <= watermarks[record.slot]
                    ]
                    remaining = deadline - time.monotonic()
                    if not pending or remaining <= 0:
                        break
                    self._collect_condition.wait(remaining)
                return {
                    record.slot: record.latest_payload
                    for record in self._records
                    if record.latest_payload is not None
                }

    def metrics(self) -> dict:
        """The cross-worker aggregate document (also what workers serve).

        ``aggregate`` equals the per-sample sum of ``workers`` plus
        ``retired`` by construction — the merge and the parts come from
        the same collected dumps.
        """
        worker_dumps = self._collect_fresh()
        with self._retired_lock:
            retired = self._retired
        parts = list(worker_dumps.values()) + ([retired] if retired else [])
        merged = merge_dumps(parts) if parts else {}
        alive = self.workers_alive
        merged["repro_pool_workers_expected"] = {
            "kind": "gauge",
            "help": "Worker processes the pool is configured for",
            "value": float(self.workers_expected),
        }
        merged["repro_pool_workers_alive"] = {
            "kind": "gauge",
            "help": "Worker processes currently alive",
            "value": float(alive),
        }
        merged["repro_pool_worker_restarts_total"] = {
            "kind": "counter",
            "help": "Times the supervisor restarted a dead worker",
            "labels": [],
            "values": {json.dumps([]): float(self._restarts_total)},
        }
        return {
            "workers_expected": self.workers_expected,
            "workers_alive": alive,
            "worker_restarts_total": self._restarts_total,
            "requests_total": counter_total(merged, "repro_http_responses_total"),
            "errors_total": self._errors_total(merged),
            "aggregate": flatten_dump(merged),
            "workers": {
                str(slot): flatten_dump(dump) for slot, dump in sorted(worker_dumps.items())
            },
            "retired": flatten_dump(retired) if retired else {},
            "aggregate_dump": merged,
        }

    @staticmethod
    def _errors_total(merged: Dict[str, Dict]) -> float:
        entry = merged.get("repro_http_responses_total")
        if entry is None or entry.get("kind") != "counter":
            return 0.0
        total = 0.0
        for key, value in entry["values"].items():
            code = json.loads(key)[0]
            if code and code[0] in ("4", "5"):
                total += value
        return total

    def health(self) -> dict:
        with self._journal_lock:
            journaled = len(self._update_journal)
        return {
            "workers_expected": self.workers_expected,
            "workers_alive": self.workers_alive,
            "worker_restarts_total": self._restarts_total,
            "updates_journaled": journaled,
        }

    @property
    def workers_alive(self) -> int:
        return sum(1 for record in self._records if record.alive())

    def worker_pids(self) -> List[int]:
        """PIDs of the live workers (tests kill these on purpose)."""
        return [
            record.process.pid
            for record in self._records
            if record.process is not None and record.process.is_alive()
        ]

    # -- shutdown --------------------------------------------------------------

    def shutdown(self) -> None:
        """Rolling drain: one worker at a time finishes its streams and exits.

        Each worker gets the ``drain`` control command *and* SIGTERM (either
        alone suffices; both covers a wedged control thread), then up to
        ``drain_timeout`` plus a grace period to exit before escalation.
        """
        if not self._started or self._stopped.is_set():
            self._stopped.set()
            return
        self._stopping.set()
        for record in self._records:
            process = record.process
            if process is None or not process.is_alive():
                continue
            record.send_command({"op": "drain"})
            try:
                if process.pid:
                    os.kill(process.pid, signal.SIGTERM)
            except (OSError, ProcessLookupError):
                pass
            process.join(timeout=self.drain_timeout + 5.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=2.0)
                if process.is_alive():  # pragma: no cover - last resort
                    process.kill()
                    process.join(timeout=2.0)
            self._fold_into_retired(record)
            record.process = None
        if self._listen_socket is not None:
            try:
                self._listen_socket.close()
            except OSError:
                pass
            self._listen_socket = None
        self._stopped.set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until :meth:`shutdown` completes (signal handlers call it)."""
        return self._stopped.wait(timeout)

    def __enter__(self) -> "WorkerPool":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def __repr__(self) -> str:
        state = "up" if self._started and not self._stopped.is_set() else "down"
        return "WorkerPool(%r, workers=%d/%d, %s)" % (
            self.source,
            self.workers_alive,
            self.workers_expected,
            state,
        )


def serve_pool(source: str, **options) -> WorkerPool:
    """Build and start a prefork pool in one call (mirrors :func:`serve`)."""
    return WorkerPool(source, **options).start()
