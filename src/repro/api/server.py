"""A stdlib-only SPARQL 1.1 Protocol endpoint over a :class:`Session`.

The server speaks the query half of the SPARQL 1.1 Protocol:

* ``GET /sparql?query=...`` and ``POST /sparql`` (either
  ``application/x-www-form-urlencoded`` with a ``query`` field or a raw
  ``application/sparql-query`` body),
* content negotiation over the three result serialisations of
  :mod:`repro.api.results` — SPARQL JSON (default), CSV and TSV — via the
  ``Accept`` header or the non-standard ``format=json|csv|tsv`` parameter,
* **streamed** responses: pages come off the :class:`Cursor` and go out as
  chunks (``Transfer-Encoding: chunked``), so a million-row result never
  materialises server-side,
* structured errors: every failure is a JSON body
  ``{"error": {"code": ..., "message": ...}}`` whose ``code`` is the
  stable :class:`~repro.api.errors.ReproError` code and whose status
  follows the class (400 parse/plan, 503 timeout, 500 execution),
* ``GET /healthz`` (liveness + triple count) and ``GET /metrics`` (the
  session's serving metrics, plan-cache counters and per-status-class
  request totals — JSON by default, Prometheus text exposition when the
  ``Accept`` header asks for ``text/plain`` / OpenMetrics or
  ``?format=prometheus`` is passed),
* observability: every response carries an ``X-Repro-Trace-Id`` header
  (echoed from the request header or freshly minted), error bodies repeat
  it, and when the serving session traces (``trace_capacity`` > 0) the
  retained traces are served at ``GET /traces``,
* graceful shutdown: :meth:`SparqlServer.shutdown` (or the context
  manager, or SIGINT/SIGTERM under ``repro.cli serve``) stops accepting,
  finishes in-flight handlers and closes the socket.

Concurrency comes from ``ThreadingHTTPServer`` (a thread per request) on
top of the engine's thread-safe read path; per-request work runs under the
session's timeout budget.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from ..obs.registry import MetricsRegistry, render_text
from .cursor import Cursor
from .dataset import Dataset, Session, connect
from .errors import BadRequestError, ReproError
from .results import negotiate, serializer_for

#: default TCP port (0 = pick an ephemeral port and report it)
DEFAULT_PORT = 8347

SPARQL_QUERY_TYPE = "application/sparql-query"
FORM_TYPE = "application/x-www-form-urlencoded"

#: request bodies larger than this are rejected up front (64 MiB)
MAX_BODY_BYTES = 64 * 1024 * 1024


class _SparqlHTTPServer(ThreadingHTTPServer):
    """One handler thread per request; daemonic so shutdown never hangs."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, handler, facade: "SparqlServer"):
        super().__init__(address, handler)
        self.facade = facade


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-sparql/1.1"
    protocol_version = "HTTP/1.1"

    # -- plumbing --------------------------------------------------------------

    @property
    def facade(self) -> "SparqlServer":
        return self.server.facade  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if self.facade.verbose:
            BaseHTTPRequestHandler.log_message(self, format, *args)

    def _begin_request(self) -> None:
        """Per-request setup: adopt or mint the request's trace id."""
        incoming = (self.headers.get("X-Repro-Trace-Id") or "").strip()
        self.trace_id = incoming or self.facade.session.engine.trace_ids.new_id()

    def _send_document(self, status: int, body: str, content_type: str) -> None:
        # Every non-streamed response funnels through here, so this is the
        # single place request outcomes are counted (by status code).
        self.facade.count_response(status)
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type + "; charset=utf-8")
        self.send_header("Content-Length", str(len(payload)))
        trace_id = getattr(self, "trace_id", None)
        if trace_id:
            self.send_header("X-Repro-Trace-Id", trace_id)
        if self.close_connection:
            # Set by handlers that rejected a request without draining its
            # body: keep-alive framing would misread the undrained bytes as
            # the next request, so tell the client the connection ends here.
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(payload)

    def _send_json(self, status: int, payload: dict) -> None:
        self._send_document(status, json.dumps(payload, indent=2) + "\n", "application/json")

    def _send_error_body(self, error: ReproError) -> None:
        body = {"error": error.as_dict()}
        trace_id = getattr(self, "trace_id", None)
        if trace_id:
            body["error"]["trace_id"] = trace_id
        self._send_json(error.http_status, body)

    def _write_chunk(self, text: str) -> None:
        if not text:
            return
        data = text.encode("utf-8")
        self.wfile.write(b"%x\r\n" % len(data))
        self.wfile.write(data)
        self.wfile.write(b"\r\n")

    # -- endpoints -------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib casing
        self._begin_request()
        url = urlsplit(self.path)
        if url.path == self.facade.endpoint_path:
            parameters = parse_qs(url.query)
            query = parameters.get("query", [None])[0]
            self._answer_query(query, parameters.get("format", [None])[0])
        elif url.path == "/healthz":
            self._send_json(200, self.facade.health())
        elif url.path == "/metrics":
            self._answer_metrics(parse_qs(url.query).get("format", [None])[0])
        elif url.path == "/traces":
            self._answer_traces()
        else:
            self._send_error_body(BadRequestError("no such resource: %s" % url.path))

    def _answer_metrics(self, explicit_format: Optional[str]) -> None:
        accept = (self.headers.get("Accept") or "").lower()
        wants_text = explicit_format in ("prometheus", "text") or (
            explicit_format is None
            and ("text/plain" in accept or "openmetrics" in accept)
        )
        if wants_text:
            self._send_document(
                200, self.facade.metrics_text(), "text/plain; version=0.0.4"
            )
        else:
            self._send_json(200, self.facade.metrics())

    def _answer_traces(self) -> None:
        if self.facade.session.trace_buffer is None:
            error = BadRequestError(
                "tracing is disabled on this endpoint (start the session with "
                "trace_capacity > 0, e.g. `repro.cli serve --trace-buffer N`)"
            )
            error.http_status = 404
            self._send_error_body(error)
            return
        traces = self.facade.session.traces()
        self._send_json(200, {"count": len(traces), "traces": [t.as_dict() for t in traces]})

    def do_POST(self) -> None:  # noqa: N802 - stdlib casing
        self._begin_request()
        url = urlsplit(self.path)
        if url.path != self.facade.endpoint_path:
            self._send_error_body(BadRequestError("no such resource: %s" % url.path))
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = -1
        if length < 0 or length > MAX_BODY_BYTES:
            # The body stays undrained; the connection must not be reused.
            self.close_connection = True
            self._send_error_body(BadRequestError("missing or oversized request body"))
            return
        body = self.rfile.read(length).decode("utf-8", errors="replace")
        content_type = (self.headers.get("Content-Type") or "").split(";", 1)[0].strip().lower()
        explicit_format = parse_qs(url.query).get("format", [None])[0]
        if content_type == SPARQL_QUERY_TYPE:
            self._answer_query(body, explicit_format)
        elif content_type == FORM_TYPE or content_type == "":
            form = parse_qs(body)
            query = form.get("query", [None])[0]
            self._answer_query(query, explicit_format or form.get("format", [None])[0])
        else:
            error = BadRequestError("unsupported media type %r" % content_type)
            error.http_status = 415
            self._send_error_body(error)

    # -- query handling --------------------------------------------------------

    def _answer_query(self, query: Optional[str], explicit_format: Optional[str]) -> None:
        if not query or not query.strip():
            self._send_error_body(BadRequestError("missing 'query' parameter"))
            return
        format_key = negotiate(self.headers.get("Accept"), explicit_format)
        if format_key is None:
            error = BadRequestError(
                "cannot produce any media type in %r; supported: "
                "application/sparql-results+json, text/csv, text/tab-separated-values"
                % (explicit_format or self.headers.get("Accept"),)
            )
            error.http_status = 406
            self._send_error_body(error)
            return
        try:
            cursor = self.facade.session.execute(query, trace_id=getattr(self, "trace_id", None))
        except ReproError as error:
            self._send_error_body(error)
            return
        except Exception as error:  # defensive: never leak a traceback as HTML
            wrapped = ReproError("internal error: %s" % error, cause=error)
            self._send_error_body(wrapped)
            return
        self._stream_result(cursor, format_key)

    def _stream_result(self, cursor: Cursor, format_key: str) -> None:
        self.facade.count_response(200)
        serializer = serializer_for(format_key)
        self.send_response(200)
        self.send_header("Content-Type", serializer.content_type + "; charset=utf-8")
        self.send_header("Transfer-Encoding", "chunked")
        trace_id = getattr(self, "trace_id", None)
        if trace_id:
            self.send_header("X-Repro-Trace-Id", trace_id)
        self.end_headers()
        # Headers are out: errors past this point can only truncate the
        # chunked body (the client sees an incomplete-read error, never a
        # silently wrong result).
        self._write_chunk(serializer.begin(cursor.variables))
        for page in cursor.pages():
            self._write_chunk(serializer.rows(page))
        self._write_chunk(serializer.end())
        self.wfile.write(b"0\r\n\r\n")


class SparqlServer:
    """The SPARQL endpoint: a threaded HTTP server over one session."""

    def __init__(
        self,
        source,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        endpoint_path: str = "/sparql",
        verbose: bool = False,
        **session_options,
    ):
        """Bind (but do not yet serve) an endpoint for ``source``.

        ``source`` is anything :func:`repro.api.connect` accepts — or an
        already-built :class:`Session`.  ``session_options`` (executor,
        parallelism, timeout, page_size, plan_cache_capacity...) configure
        the serving session.
        """
        if isinstance(source, Session):
            self.session = source
            self.dataset = source.dataset
        else:
            self.dataset = connect(source)
            self.session = self.dataset.session(**session_options)
        self.endpoint_path = endpoint_path
        self.verbose = verbose
        self._httpd = _SparqlHTTPServer((host, port), _Handler, self)
        self._thread: Optional[threading.Thread] = None
        self._serving = False
        self._lock = threading.Lock()
        #: HTTP-layer instruments; exposed next to the session's collector
        #: registry in the Prometheus text endpoint.
        self.registry = MetricsRegistry()
        self._responses = self.registry.counter(
            "repro_http_responses_total",
            "HTTP responses sent, by status code",
            labels=("code",),
        )

    # -- addresses -------------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` — the real port even when 0 was asked."""
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        """The query endpoint URL."""
        host, port = self.address
        return "http://%s:%d%s" % (host, port, self.endpoint_path)

    # -- serving ---------------------------------------------------------------

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`shutdown` is called."""
        self._serving = True
        self._httpd.serve_forever(poll_interval=0.1)

    def start(self) -> "SparqlServer":
        """Serve on a background daemon thread; returns self."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self.serve_forever, name="repro-sparql-server", daemon=True
            )
            self._thread.start()
        return self

    def shutdown(self) -> None:
        """Stop accepting, drain in-flight handlers, close the socket.

        Safe on a server that was never started: ``BaseServer.shutdown``
        blocks until the serve loop acknowledges, which would wait forever
        when no loop ever ran, so it is only invoked once one has (or is
        about to — a just-started background thread exits promptly).
        """
        if self._serving or self._thread is not None:
            self._httpd.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self._serving = False
        self._httpd.server_close()
        self.session.close()

    def __enter__(self) -> "SparqlServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # -- introspection ---------------------------------------------------------

    def count_response(self, status: int) -> None:
        self._responses.inc(code=str(status))

    def response_counts(self) -> dict:
        """Per-status-class response totals (plus exact per-code counts)."""
        per_code = {}
        for key, value in self._responses.as_dict().items():
            code = key.split('code="', 1)[1].split('"', 1)[0]
            per_code[code] = per_code.get(code, 0) + int(value)
        classes = {"2xx": 0, "3xx": 0, "4xx": 0, "5xx": 0}
        for code, count in per_code.items():
            bucket = code[0] + "xx"
            if bucket in classes:
                classes[bucket] += count
        return {"by_code": per_code, "by_class": classes}

    def health(self) -> dict:
        return {
            "status": "ok",
            "triples": len(self.dataset),
            "source": self.dataset.source,
            "executor": self.session.engine.executor_name,
            "parallelism": self.session.engine.parallelism,
        }

    def metrics(self) -> dict:
        counts = self.response_counts()
        payload = dict(self.session.metrics())
        payload["requests_total"] = sum(counts["by_code"].values())
        payload["errors_total"] = counts["by_class"]["4xx"] + counts["by_class"]["5xx"]
        payload["responses"] = counts
        return payload

    def metrics_text(self) -> str:
        """Prometheus text exposition: HTTP counters + session instruments."""
        return render_text([self.registry, self.session.service.metrics.registry])

    def __repr__(self) -> str:
        return "SparqlServer(%s over %r)" % (self.url, self.dataset.source)


def serve(source, **options) -> SparqlServer:
    """Build and start a background endpoint in one call.

    ``with repro.serve("bsbm.snapshot", port=0) as server:`` gives a live
    endpoint at ``server.url``; leaving the block shuts it down.
    """
    return SparqlServer(source, **options).start()
