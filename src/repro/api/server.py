"""A stdlib-only SPARQL 1.1 Protocol endpoint over a :class:`Session`.

The server speaks the query and update halves of the SPARQL 1.1 Protocol:

* ``GET /sparql?query=...`` and ``POST /sparql`` (either
  ``application/x-www-form-urlencoded`` with a ``query`` field or a raw
  ``application/sparql-query`` body),
* **updates**: ``POST /sparql`` with a raw ``application/sparql-update``
  body or an ``update=`` form field applies INSERT DATA / DELETE DATA /
  DELETE WHERE under the store's writer lock and answers a JSON summary
  (``inserted``, ``deleted``, ``data_version``); in-flight queries keep
  streaming their pinned snapshot,
* content negotiation over the three result serialisations of
  :mod:`repro.api.results` — SPARQL JSON (default), CSV and TSV — via the
  ``Accept`` header or the non-standard ``format=json|csv|tsv`` parameter,
* **streamed** responses: pages come off the :class:`Cursor` and go out as
  chunks (``Transfer-Encoding: chunked``), so a million-row result never
  materialises server-side,
* structured errors: every failure is a JSON body
  ``{"error": {"code": ..., "message": ...}}`` whose ``code`` is the
  stable :class:`~repro.api.errors.ReproError` code and whose status
  follows the class (400 parse/plan, 503 timeout, 500 execution),
* ``GET /healthz`` (liveness + triple count) and ``GET /metrics`` (the
  session's serving metrics, plan-cache counters and per-status-class
  request totals — JSON by default, Prometheus text exposition when the
  ``Accept`` header asks for ``text/plain`` / OpenMetrics or
  ``?format=prometheus`` is passed),
* observability: every response carries an ``X-Repro-Trace-Id`` header
  (echoed from the request header or freshly minted), error bodies repeat
  it, and when the serving session traces (``trace_capacity`` > 0) the
  retained traces are served at ``GET /traces``,
* **admission control**: query requests pass a bounded front door — at most
  ``max_inflight`` execute concurrently, at most ``admission_queue`` wait
  (for at most ``queue_timeout`` seconds), and no single client may hold
  more than its fair share of the capacity.  Anything beyond the budget is
  *load-shed* immediately with a structured 503 (code ``overloaded``,
  ``Retry-After`` header, ``queue_depth`` in the body) instead of
  accumulating handler threads,
* graceful shutdown: :meth:`SparqlServer.shutdown` (or the context
  manager, or SIGINT/SIGTERM under ``repro.cli serve``) stops accepting,
  **drains** in-flight handlers — streamed chunked responses finish within
  a bounded ``drain_timeout`` instead of being truncated mid-chunk — and
  closes the socket.

Concurrency comes from ``ThreadingHTTPServer`` (a thread per request) on
top of the engine's thread-safe read path; per-request work runs under the
session's timeout budget.  For multi-core scaling beyond one interpreter,
:mod:`repro.api.pool` preforks N worker processes that each run this exact
server over one shared listening socket and one shared mmap snapshot.
"""

from __future__ import annotations

import json
import socket as _socket
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from ..obs.registry import MetricsRegistry, render_text
from .cursor import Cursor
from .dataset import Dataset, Session, connect
from .errors import BadRequestError, ReproError, ServerOverloadedError
from .results import negotiate, serializer_for

#: default TCP port (0 = pick an ephemeral port and report it)
DEFAULT_PORT = 8347

SPARQL_QUERY_TYPE = "application/sparql-query"
SPARQL_UPDATE_TYPE = "application/sparql-update"
FORM_TYPE = "application/x-www-form-urlencoded"

#: request bodies larger than this are rejected up front (64 MiB)
MAX_BODY_BYTES = 64 * 1024 * 1024

#: admission-control defaults: generous enough that a lightly loaded
#: endpoint never sheds, bounded enough that overload degrades into fast
#: structured 503s instead of an unbounded thread pile-up.
DEFAULT_MAX_INFLIGHT = 64
DEFAULT_ADMISSION_QUEUE = 128
DEFAULT_QUEUE_TIMEOUT = 2.0

#: how long shutdown waits for in-flight responses to finish streaming.
DEFAULT_DRAIN_TIMEOUT = 5.0


class AdmissionController:
    """The bounded front door: in-flight budget, backlog, per-client fairness.

    ``admit(client)`` either returns normally (a slot is held; call
    ``release(client)`` in a ``finally``) or raises
    :class:`ServerOverloadedError` with the shed reason:

    * ``queue_full`` — ``max_inflight`` requests are executing and
      ``max_queue`` more are already waiting,
    * ``queue_timeout`` — the request waited ``queue_timeout`` seconds
      without a slot freeing up,
    * ``client_limit`` — this client already holds ``per_client_limit``
      slots (executing + waiting), so admitting it would let one greedy
      client starve everyone else.

    ``per_client_limit`` defaults to half the total capacity (at least 1):
    a single client can never occupy the whole server.
    """

    def __init__(
        self,
        max_inflight: int = DEFAULT_MAX_INFLIGHT,
        max_queue: int = DEFAULT_ADMISSION_QUEUE,
        queue_timeout: float = DEFAULT_QUEUE_TIMEOUT,
        per_client_limit: Optional[int] = None,
    ):
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1, got %r" % (max_inflight,))
        if max_queue < 0:
            raise ValueError("max_queue must be >= 0, got %r" % (max_queue,))
        self.max_inflight = max_inflight
        self.max_queue = max_queue
        self.queue_timeout = queue_timeout
        capacity = max_inflight + max_queue
        self.per_client_limit = (
            per_client_limit if per_client_limit else max(1, (capacity + 1) // 2)
        )
        self._condition = threading.Condition()
        self._inflight = 0
        self._waiting = 0
        self._per_client: dict = {}

    # -- introspection ---------------------------------------------------------

    @property
    def inflight(self) -> int:
        with self._condition:
            return self._inflight

    @property
    def queue_depth(self) -> int:
        with self._condition:
            return self._waiting

    # -- the front door --------------------------------------------------------

    def _shed(self, reason: str, message: str) -> ServerOverloadedError:
        # Called under self._condition.
        return ServerOverloadedError(
            message, reason=reason, queue_depth=self._waiting, retry_after=1
        )

    def admit(self, client: str) -> None:
        """Hold a slot for ``client`` or raise :class:`ServerOverloadedError`."""
        deadline = time.monotonic() + self.queue_timeout
        with self._condition:
            held = self._per_client.get(client, 0)
            if held >= self.per_client_limit:
                raise self._shed(
                    "client_limit",
                    "client %s already holds %d of %d allowed slots"
                    % (client, held, self.per_client_limit),
                )
            if self._inflight < self.max_inflight:
                self._inflight += 1
                self._per_client[client] = held + 1
                return
            if self._waiting >= self.max_queue:
                raise self._shed(
                    "queue_full",
                    "server at capacity (%d in flight, %d queued)"
                    % (self._inflight, self._waiting),
                )
            self._waiting += 1
            self._per_client[client] = held + 1
            try:
                while self._inflight >= self.max_inflight:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        self._drop_client(client)
                        raise self._shed(
                            "queue_timeout",
                            "request waited %.3fs for a slot" % self.queue_timeout,
                        )
                    self._condition.wait(remaining)
                self._inflight += 1
            finally:
                self._waiting -= 1

    def release(self, client: str) -> None:
        """Free the slot ``admit`` granted; wakes one queued waiter."""
        with self._condition:
            self._inflight -= 1
            self._drop_client(client)
            self._condition.notify()

    def _drop_client(self, client: str) -> None:
        held = self._per_client.get(client, 0) - 1
        if held <= 0:
            self._per_client.pop(client, None)
        else:
            self._per_client[client] = held


class _SparqlHTTPServer(ThreadingHTTPServer):
    """One handler thread per request; daemonic so shutdown never hangs.

    ``listen_socket`` adopts an already-bound, already-listening socket
    instead of binding a fresh one — the prefork worker pool opens the
    socket once in the parent and every forked worker serves on it.
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        address,
        handler,
        facade: "SparqlServer",
        listen_socket: Optional[_socket.socket] = None,
    ):
        if listen_socket is not None:
            super().__init__(address, handler, bind_and_activate=False)
            self.socket.close()  # replace the unused fresh socket
            self.socket = listen_socket
            self.server_address = listen_socket.getsockname()
            # what server_bind would have derived (handlers log these)
            host, port = self.server_address[:2]
            self.server_name = host
            self.server_port = port
        else:
            super().__init__(address, handler)
        self.facade = facade


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-sparql/1.1"
    protocol_version = "HTTP/1.1"

    # -- plumbing --------------------------------------------------------------

    @property
    def facade(self) -> "SparqlServer":
        return self.server.facade  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if self.facade.verbose:
            BaseHTTPRequestHandler.log_message(self, format, *args)

    def _begin_request(self) -> None:
        """Per-request setup: adopt or mint the request's trace id."""
        incoming = (self.headers.get("X-Repro-Trace-Id") or "").strip()
        self.trace_id = incoming or self.facade.session.engine.trace_ids.new_id()

    def _send_document(
        self, status: int, body: str, content_type: str, extra_headers: Optional[dict] = None
    ) -> None:
        # Every non-streamed response funnels through here, so this is the
        # single place request outcomes are counted (by status code).
        self.facade.count_response(status)
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type + "; charset=utf-8")
        self.send_header("Content-Length", str(len(payload)))
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        trace_id = getattr(self, "trace_id", None)
        if trace_id:
            self.send_header("X-Repro-Trace-Id", trace_id)
        if self.close_connection:
            # Set by handlers that rejected a request without draining its
            # body: keep-alive framing would misread the undrained bytes as
            # the next request, so tell the client the connection ends here.
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(payload)

    def _send_json(self, status: int, payload: dict, extra_headers: Optional[dict] = None) -> None:
        self._send_document(
            status, json.dumps(payload, indent=2) + "\n", "application/json", extra_headers
        )

    def _send_error_body(self, error: ReproError) -> None:
        body = {"error": error.as_dict()}
        trace_id = getattr(self, "trace_id", None)
        if trace_id:
            body["error"]["trace_id"] = trace_id
        headers = None
        if error.http_status == 503:
            # Both shed ("overloaded") and budget ("query_timeout") 503s tell
            # the client when to come back.
            headers = {"Retry-After": str(getattr(error, "retry_after", 1))}
        self._send_json(error.http_status, body, headers)

    def _write_chunk(self, text: str) -> None:
        if not text:
            return
        data = text.encode("utf-8")
        self.wfile.write(b"%x\r\n" % len(data))
        self.wfile.write(data)
        self.wfile.write(b"\r\n")

    # -- endpoints -------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib casing
        self._handle_request(self._route_get)

    def do_POST(self) -> None:  # noqa: N802 - stdlib casing
        self._handle_request(self._route_post)

    def _handle_request(self, route) -> None:
        """Per-request bookkeeping shared by every method.

        The in-flight count is what graceful shutdown drains on: a chunked
        stream in progress keeps the server open (up to the drain deadline)
        instead of being truncated mid-chunk.  Once draining starts, new
        requests — including ones arriving on established keep-alive
        connections after the listener stopped accepting — are shed with a
        structured 503 and ``Connection: close`` so clients reconnect
        (to the next worker, under the pool's rolling restarts).
        """
        self._begin_request()
        facade = self.facade
        facade._request_started()
        try:
            if facade.draining:
                self.close_connection = True
                facade.count_shed("draining")
                self._send_error_body(
                    ServerOverloadedError(
                        "server is draining for shutdown", reason="draining"
                    )
                )
                return
            route()
        finally:
            facade._request_finished()

    def _route_get(self) -> None:
        url = urlsplit(self.path)
        if url.path == self.facade.endpoint_path:
            parameters = parse_qs(url.query)
            query = parameters.get("query", [None])[0]
            self._admitted_query(query, parameters.get("format", [None])[0])
        elif url.path == "/healthz":
            self._send_json(200, self.facade.health())
        elif url.path == "/metrics":
            self._answer_metrics(parse_qs(url.query).get("format", [None])[0])
        elif url.path == "/traces":
            self._answer_traces()
        else:
            self._send_error_body(BadRequestError("no such resource: %s" % url.path))

    def _admitted_query(self, query: Optional[str], explicit_format: Optional[str]) -> None:
        """Route a query request through the admission-control front door.

        Operational endpoints (``/healthz``, ``/metrics``, ``/traces``)
        bypass admission on purpose: they must stay answerable while the
        server sheds query load.
        """
        facade = self.facade
        client = self.client_address[0] if self.client_address else "unknown"
        try:
            facade.admission.admit(client)
        except ServerOverloadedError as error:
            facade.count_shed(error.reason or "shed")
            self._send_error_body(error)
            return
        try:
            self._answer_query(query, explicit_format)
        finally:
            facade.admission.release(client)

    def _admitted_update(self, update: Optional[str]) -> None:
        """Route an update request through the same admission front door.

        Updates share the query budget on purpose: a write burst competes
        with reads for the same bounded capacity instead of bypassing it.
        """
        facade = self.facade
        client = self.client_address[0] if self.client_address else "unknown"
        try:
            facade.admission.admit(client)
        except ServerOverloadedError as error:
            facade.count_shed(error.reason or "shed")
            self._send_error_body(error)
            return
        try:
            self._answer_update(update)
        finally:
            facade.admission.release(client)

    def _answer_update(self, update: Optional[str]) -> None:
        if not update or not update.strip():
            self._send_error_body(BadRequestError("missing 'update' parameter"))
            return
        try:
            result = self.facade.apply_update(update)
        except ReproError as error:
            self._send_error_body(error)
            return
        except Exception as error:  # defensive: never leak a traceback as HTML
            wrapped = ReproError("internal error: %s" % error, cause=error)
            self._send_error_body(wrapped)
            return
        self._send_json(200, result.to_dict())

    def _answer_metrics(self, explicit_format: Optional[str]) -> None:
        accept = (self.headers.get("Accept") or "").lower()
        wants_text = explicit_format in ("prometheus", "text") or (
            explicit_format is None
            and ("text/plain" in accept or "openmetrics" in accept)
        )
        if wants_text:
            self._send_document(
                200, self.facade.metrics_text(), "text/plain; version=0.0.4"
            )
        else:
            self._send_json(200, self.facade.metrics())

    def _answer_traces(self) -> None:
        if self.facade.session.trace_buffer is None:
            error = BadRequestError(
                "tracing is disabled on this endpoint (start the session with "
                "trace_capacity > 0, e.g. `repro.cli serve --trace-buffer N`)"
            )
            error.http_status = 404
            self._send_error_body(error)
            return
        traces = self.facade.session.traces()
        self._send_json(200, {"count": len(traces), "traces": [t.as_dict() for t in traces]})

    def _route_post(self) -> None:
        url = urlsplit(self.path)
        if url.path != self.facade.endpoint_path:
            self._send_error_body(BadRequestError("no such resource: %s" % url.path))
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = -1
        if length < 0 or length > MAX_BODY_BYTES:
            # The body stays undrained; the connection must not be reused.
            self.close_connection = True
            self._send_error_body(BadRequestError("missing or oversized request body"))
            return
        # The body is read *before* admission, so a shed response leaves the
        # connection cleanly reusable.
        body = self.rfile.read(length).decode("utf-8", errors="replace")
        content_type = (self.headers.get("Content-Type") or "").split(";", 1)[0].strip().lower()
        explicit_format = parse_qs(url.query).get("format", [None])[0]
        if content_type == SPARQL_QUERY_TYPE:
            self._admitted_query(body, explicit_format)
        elif content_type == SPARQL_UPDATE_TYPE:
            self._admitted_update(body)
        elif content_type == FORM_TYPE or content_type == "":
            form = parse_qs(body)
            update = form.get("update", [None])[0]
            if update is not None:
                self._admitted_update(update)
                return
            query = form.get("query", [None])[0]
            self._admitted_query(query, explicit_format or form.get("format", [None])[0])
        else:
            error = BadRequestError("unsupported media type %r" % content_type)
            error.http_status = 415
            self._send_error_body(error)

    # -- query handling --------------------------------------------------------

    def _answer_query(self, query: Optional[str], explicit_format: Optional[str]) -> None:
        if not query or not query.strip():
            self._send_error_body(BadRequestError("missing 'query' parameter"))
            return
        format_key = negotiate(self.headers.get("Accept"), explicit_format)
        if format_key is None:
            error = BadRequestError(
                "cannot produce any media type in %r; supported: "
                "application/sparql-results+json, text/csv, text/tab-separated-values"
                % (explicit_format or self.headers.get("Accept"),)
            )
            error.http_status = 406
            self._send_error_body(error)
            return
        try:
            cursor = self.facade.session.execute(query, trace_id=getattr(self, "trace_id", None))
        except ReproError as error:
            self._send_error_body(error)
            return
        except Exception as error:  # defensive: never leak a traceback as HTML
            wrapped = ReproError("internal error: %s" % error, cause=error)
            self._send_error_body(wrapped)
            return
        self._stream_result(cursor, format_key)

    def _stream_result(self, cursor: Cursor, format_key: str) -> None:
        self.facade.count_response(200)
        serializer = serializer_for(format_key)
        self.send_response(200)
        self.send_header("Content-Type", serializer.content_type + "; charset=utf-8")
        self.send_header("Transfer-Encoding", "chunked")
        trace_id = getattr(self, "trace_id", None)
        if trace_id:
            self.send_header("X-Repro-Trace-Id", trace_id)
        self.end_headers()
        # Headers are out: errors past this point can only truncate the
        # chunked body (the client sees an incomplete-read error, never a
        # silently wrong result).
        self._write_chunk(serializer.begin(cursor.variables))
        for page in cursor.pages():
            self._write_chunk(serializer.rows(page))
        self._write_chunk(serializer.end())
        self.wfile.write(b"0\r\n\r\n")


class SparqlServer:
    """The SPARQL endpoint: a threaded HTTP server over one session."""

    def __init__(
        self,
        source,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        endpoint_path: str = "/sparql",
        verbose: bool = False,
        max_inflight: int = DEFAULT_MAX_INFLIGHT,
        admission_queue: int = DEFAULT_ADMISSION_QUEUE,
        queue_timeout: float = DEFAULT_QUEUE_TIMEOUT,
        per_client_limit: Optional[int] = None,
        drain_timeout: float = DEFAULT_DRAIN_TIMEOUT,
        listen_socket: Optional[_socket.socket] = None,
        pool_client=None,
        **session_options,
    ):
        """Bind (but do not yet serve) an endpoint for ``source``.

        ``source`` is anything :func:`repro.api.connect` accepts — or an
        already-built :class:`Session`.  ``session_options`` (executor,
        parallelism, timeout, page_size, plan_cache_capacity...) configure
        the serving session.

        ``max_inflight`` / ``admission_queue`` / ``queue_timeout`` /
        ``per_client_limit`` configure the admission-control front door
        (see :class:`AdmissionController`); ``drain_timeout`` bounds how
        long :meth:`shutdown` waits for in-flight streamed responses.
        ``listen_socket`` adopts a pre-bound listening socket instead of
        binding ``(host, port)`` and ``pool_client`` connects a prefork
        worker to its parent's control plane — both are wired by
        :class:`repro.api.pool.WorkerPool`.
        """
        if isinstance(source, Session):
            self.session = source
            self.dataset = source.dataset
        else:
            self.dataset = connect(source)
            self.session = self.dataset.session(**session_options)
        self.endpoint_path = endpoint_path
        self.verbose = verbose
        self.admission = AdmissionController(
            max_inflight=max_inflight,
            max_queue=admission_queue,
            queue_timeout=queue_timeout,
            per_client_limit=per_client_limit,
        )
        self.drain_timeout = drain_timeout
        self.pool_client = pool_client
        #: set by shutdown(): new requests are shed, in-flight ones drain.
        self.draining = False
        self._active_requests = 0
        self._active_condition = threading.Condition()
        self._httpd = _SparqlHTTPServer((host, port), _Handler, self, listen_socket)
        self._thread: Optional[threading.Thread] = None
        self._serving = False
        self._lock = threading.Lock()
        #: HTTP-layer instruments; exposed next to the session's collector
        #: registry in the Prometheus text endpoint.
        self.registry = MetricsRegistry()
        self._responses = self.registry.counter(
            "repro_http_responses_total",
            "HTTP responses sent, by status code",
            labels=("code",),
        )
        self._sheds = self.registry.counter(
            "repro_http_requests_shed_total",
            "Requests load-shed at the admission-control front door, by reason",
            labels=("reason",),
        )
        self.registry.gauge(
            "repro_http_inflight_queries",
            "Admitted query requests currently executing",
            callback=lambda: self.admission.inflight,
        )
        self.registry.gauge(
            "repro_http_admission_queue_depth",
            "Query requests waiting at the admission-control front door",
            callback=lambda: self.admission.queue_depth,
        )

    # -- addresses -------------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` — the real port even when 0 was asked."""
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        """The query endpoint URL."""
        host, port = self.address
        return "http://%s:%d%s" % (host, port, self.endpoint_path)

    # -- serving ---------------------------------------------------------------

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`shutdown` is called."""
        self._serving = True
        self._httpd.serve_forever(poll_interval=0.1)

    def start(self) -> "SparqlServer":
        """Serve on a background daemon thread; returns self."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self.serve_forever, name="repro-sparql-server", daemon=True
            )
            self._thread.start()
        return self

    def shutdown(self, drain_timeout: Optional[float] = None) -> bool:
        """Stop accepting, drain in-flight handlers, close the socket.

        In-flight responses — including chunked streams mid-page — get up
        to ``drain_timeout`` seconds (the constructor's ``drain_timeout``
        when not given) to finish before the server closes; new requests
        arriving during the drain are shed with a structured 503.  Returns
        ``True`` when everything drained, ``False`` on deadline.

        Safe on a server that was never started: ``BaseServer.shutdown``
        blocks until the serve loop acknowledges, which would wait forever
        when no loop ever ran, so it is only invoked once one has (or is
        about to — a just-started background thread exits promptly).
        """
        budget = self.drain_timeout if drain_timeout is None else drain_timeout
        self.draining = True
        if self._serving or self._thread is not None:
            self._httpd.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self._serving = False
        drained = self._drain(budget)
        self._httpd.server_close()
        self.session.close()
        return drained

    def _drain(self, timeout: float) -> bool:
        """Wait (bounded) for the in-flight request count to reach zero."""
        deadline = time.monotonic() + timeout
        with self._active_condition:
            while self._active_requests > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._active_condition.wait(remaining)
        return True

    def _request_started(self) -> None:
        with self._active_condition:
            self._active_requests += 1

    def _request_finished(self) -> None:
        with self._active_condition:
            self._active_requests -= 1
            self._active_condition.notify_all()

    @property
    def active_requests(self) -> int:
        """Requests currently being handled (streams count until the last chunk)."""
        with self._active_condition:
            return self._active_requests

    def __enter__(self) -> "SparqlServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # -- updates ---------------------------------------------------------------

    def apply_update(self, update: str):
        """Apply a SPARQL update on this server's session (and replicate).

        Under the prefork pool the store is per-process, so the handling
        worker applies the update locally and then publishes the update
        text to the parent, which journals it and broadcasts it to every
        sibling worker (and replays the journal into restarted workers) —
        eventual consistency across the pool, exact consistency within the
        worker that answered.
        """
        result = self.session.update(update)
        if self.pool_client is not None and result.changed:
            self.pool_client.publish_update(update)
        return result

    # -- introspection ---------------------------------------------------------

    def count_response(self, status: int) -> None:
        self._responses.inc(code=str(status))

    def count_shed(self, reason: str) -> None:
        self._sheds.inc(reason=reason)

    def response_counts(self) -> dict:
        """Per-status-class response totals (plus exact per-code counts)."""
        per_code = {}
        for key, value in self._responses.as_dict().items():
            code = key.split('code="', 1)[1].split('"', 1)[0]
            per_code[code] = per_code.get(code, 0) + int(value)
        classes = {"2xx": 0, "3xx": 0, "4xx": 0, "5xx": 0}
        for code, count in per_code.items():
            bucket = code[0] + "xx"
            if bucket in classes:
                classes[bucket] += count
        return {"by_code": per_code, "by_class": classes}

    def health(self) -> dict:
        payload = {
            "status": "ok",
            "triples": len(self.dataset),
            "source": self.dataset.source,
            "executor": self.session.engine.executor_name,
            "parallelism": self.session.engine.parallelism,
            # uniform shape with the prefork pool: one process == one worker
            "workers_expected": 1,
            "workers_alive": 1,
        }
        if self.pool_client is not None:
            overlay = self.pool_client.health_overlay()
            if overlay is not None:
                payload.update(overlay)
            else:
                payload["control_plane"] = "unreachable"
        return payload

    def metrics(self) -> dict:
        if self.pool_client is not None:
            document = self.pool_client.metrics_document()
            if document is not None:
                payload = {
                    key: value for key, value in document.items() if key != "aggregate_dump"
                }
                return payload
        counts = self.response_counts()
        payload = dict(self.session.metrics())
        payload["requests_total"] = sum(counts["by_code"].values())
        payload["errors_total"] = counts["by_class"]["4xx"] + counts["by_class"]["5xx"]
        payload["responses"] = counts
        return payload

    def metrics_text(self) -> str:
        """Prometheus text exposition: HTTP counters + session instruments.

        Under the prefork pool this is the *cross-worker aggregate*
        (counters and histograms summed over every worker, live and
        retired), freshly collected from the parent's control plane.
        """
        if self.pool_client is not None:
            document = self.pool_client.metrics_document()
            if document is not None:
                from ..obs.registry import render_dump_text

                return render_dump_text(document["aggregate_dump"])
        registries = [self.registry, self.session.service.metrics.registry]
        if self.session.result_cache is not None:
            registries.append(self.session.result_cache.registry)
        return render_text(registries)

    def __repr__(self) -> str:
        return "SparqlServer(%s over %r)" % (self.url, self.dataset.source)


def serve(source, **options) -> SparqlServer:
    """Build and start a background endpoint in one call.

    ``with repro.serve("bsbm.snapshot", port=0) as server:`` gives a live
    endpoint at ``server.url``; leaving the block shuts it down.
    """
    return SparqlServer(source, **options).start()
