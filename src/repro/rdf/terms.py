"""RDF term model.

The term classes mirror the RDF 1.1 abstract syntax: IRIs, literals (plain,
language-tagged and datatyped) and blank nodes.  ``Variable`` is added for
query patterns.  All terms are immutable, hashable and totally ordered so
they can be used as dictionary keys and sorted deterministically inside the
store indexes.

The ordering is *term-kind first* (blank nodes < IRIs < literals <
variables), then lexicographic within a kind.  Typed numeric literals
additionally expose a ``value`` property used by the query engine for
arithmetic and comparisons.
"""

from __future__ import annotations

from typing import Optional, Union


class Term:
    """Base class for all RDF terms.

    Subclasses set ``_sort_rank`` to obtain a total order across kinds.
    """

    __slots__ = ()
    _sort_rank = 0

    def sort_key(self):
        """Return a tuple usable for deterministic cross-kind ordering."""
        return (self._sort_rank, self._local_key())

    def _local_key(self):
        raise NotImplementedError

    def n3(self) -> str:
        """Return the N-Triples / SPARQL surface form of the term."""
        raise NotImplementedError

    def is_concrete(self) -> bool:
        """Return True when the term may appear in data (not a variable)."""
        return True

    def __lt__(self, other: "Term") -> bool:
        if not isinstance(other, Term):
            return NotImplemented
        return self.sort_key() < other.sort_key()

    def __le__(self, other: "Term") -> bool:
        if not isinstance(other, Term):
            return NotImplemented
        return self.sort_key() <= other.sort_key()

    def __gt__(self, other: "Term") -> bool:
        if not isinstance(other, Term):
            return NotImplemented
        return self.sort_key() > other.sort_key()

    def __ge__(self, other: "Term") -> bool:
        if not isinstance(other, Term):
            return NotImplemented
        return self.sort_key() >= other.sort_key()


class BNode(Term):
    """A blank node identified by a local label."""

    __slots__ = ("label",)
    _sort_rank = 0

    def __init__(self, label: str):
        if not label:
            raise ValueError("blank node label must be non-empty")
        object.__setattr__(self, "label", label)

    def __setattr__(self, name, value):
        raise AttributeError("BNode is immutable")

    def _local_key(self):
        return (self.label,)

    def n3(self) -> str:
        return "_:%s" % self.label

    def __eq__(self, other) -> bool:
        return isinstance(other, BNode) and other.label == self.label

    def __hash__(self) -> int:
        return hash(("BNode", self.label))

    def __repr__(self) -> str:
        return "BNode(%r)" % self.label


class IRI(Term):
    """An IRI reference."""

    __slots__ = ("value",)
    _sort_rank = 1

    def __init__(self, value: str):
        if not value:
            raise ValueError("IRI must be non-empty")
        if any(ch in value for ch in "<>\" {}|\\^`\n\r\t"):
            raise ValueError("IRI contains characters that must be escaped: %r" % value)
        object.__setattr__(self, "value", value)

    def __setattr__(self, name, value):
        raise AttributeError("IRI is immutable")

    def _local_key(self):
        return (self.value,)

    def n3(self) -> str:
        return "<%s>" % self.value

    def local_name(self) -> str:
        """Return the fragment or last path segment of the IRI."""
        value = self.value
        if "#" in value:
            return value.rsplit("#", 1)[1]
        return value.rstrip("/").rsplit("/", 1)[-1]

    def __eq__(self, other) -> bool:
        return isinstance(other, IRI) and other.value == self.value

    def __hash__(self) -> int:
        return hash(("IRI", self.value))

    def __repr__(self) -> str:
        return "IRI(%r)" % self.value


#: XSD datatype IRIs that the engine treats as numeric.
_NUMERIC_DATATYPES = frozenset(
    [
        "http://www.w3.org/2001/XMLSchema#integer",
        "http://www.w3.org/2001/XMLSchema#int",
        "http://www.w3.org/2001/XMLSchema#long",
        "http://www.w3.org/2001/XMLSchema#decimal",
        "http://www.w3.org/2001/XMLSchema#double",
        "http://www.w3.org/2001/XMLSchema#float",
        "http://www.w3.org/2001/XMLSchema#nonNegativeInteger",
    ]
)

_INTEGER_DATATYPES = frozenset(
    [
        "http://www.w3.org/2001/XMLSchema#integer",
        "http://www.w3.org/2001/XMLSchema#int",
        "http://www.w3.org/2001/XMLSchema#long",
        "http://www.w3.org/2001/XMLSchema#nonNegativeInteger",
    ]
)

_DATE_DATATYPES = frozenset(
    [
        "http://www.w3.org/2001/XMLSchema#date",
        "http://www.w3.org/2001/XMLSchema#dateTime",
    ]
)

_BOOLEAN_DATATYPE = "http://www.w3.org/2001/XMLSchema#boolean"


class Literal(Term):
    """An RDF literal: lexical form plus optional language tag or datatype."""

    __slots__ = ("lexical", "language", "datatype")
    _sort_rank = 2

    def __init__(
        self,
        lexical: str,
        language: Optional[str] = None,
        datatype: Optional[IRI] = None,
    ):
        if language is not None and datatype is not None:
            raise ValueError("a literal cannot have both a language tag and a datatype")
        object.__setattr__(self, "lexical", str(lexical))
        object.__setattr__(self, "language", language.lower() if language else None)
        object.__setattr__(self, "datatype", datatype)

    def __setattr__(self, name, value):
        raise AttributeError("Literal is immutable")

    # -- value space -------------------------------------------------------

    def is_numeric(self) -> bool:
        return self.datatype is not None and self.datatype.value in _NUMERIC_DATATYPES

    def is_boolean(self) -> bool:
        return self.datatype is not None and self.datatype.value == _BOOLEAN_DATATYPE

    def is_temporal(self) -> bool:
        return self.datatype is not None and self.datatype.value in _DATE_DATATYPES

    @property
    def value(self) -> Union[int, float, bool, str]:
        """Return the typed Python value of the literal.

        Numeric literals map to int/float, booleans to bool, everything else
        (including dates, which compare correctly as ISO strings) to str.
        """
        if self.is_numeric():
            if self.datatype.value in _INTEGER_DATATYPES:
                return int(self.lexical)
            return float(self.lexical)
        if self.is_boolean():
            return self.lexical.strip().lower() in ("true", "1")
        return self.lexical

    # -- ordering / identity -------------------------------------------------

    def _local_key(self):
        # Numeric literals sort by value so ORDER BY over prices behaves
        # naturally; everything else sorts lexically.
        if self.is_numeric():
            return (0, float(self.lexical), self.lexical)
        return (
            1,
            self.lexical,
            self.language or "",
            self.datatype.value if self.datatype else "",
        )

    def n3(self) -> str:
        escaped = (
            self.lexical.replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n")
            .replace("\r", "\\r")
            .replace("\t", "\\t")
        )
        base = '"%s"' % escaped
        if self.language:
            return "%s@%s" % (base, self.language)
        if self.datatype is not None:
            return "%s^^%s" % (base, self.datatype.n3())
        return base

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Literal)
            and other.lexical == self.lexical
            and other.language == self.language
            and other.datatype == self.datatype
        )

    def __hash__(self) -> int:
        return hash(("Literal", self.lexical, self.language, self.datatype))

    def __repr__(self) -> str:
        if self.language:
            return "Literal(%r, language=%r)" % (self.lexical, self.language)
        if self.datatype:
            return "Literal(%r, datatype=%r)" % (self.lexical, self.datatype.value)
        return "Literal(%r)" % self.lexical


class Variable(Term):
    """A query variable (``?name``)."""

    __slots__ = ("name",)
    _sort_rank = 3

    def __init__(self, name: str):
        if not name:
            raise ValueError("variable name must be non-empty")
        if name.startswith("?") or name.startswith("$"):
            name = name[1:]
        object.__setattr__(self, "name", name)

    def __setattr__(self, name, value):
        raise AttributeError("Variable is immutable")

    def _local_key(self):
        return (self.name,)

    def n3(self) -> str:
        return "?%s" % self.name

    def is_concrete(self) -> bool:
        return False

    def __eq__(self, other) -> bool:
        return isinstance(other, Variable) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("Variable", self.name))

    def __repr__(self) -> str:
        return "Variable(%r)" % self.name


# -- convenience constructors -------------------------------------------------

_XSD = "http://www.w3.org/2001/XMLSchema#"


def typed_literal(value: Union[int, float, bool, str]) -> Literal:
    """Build a literal whose datatype matches the Python type of ``value``."""
    if isinstance(value, bool):
        return Literal("true" if value else "false", datatype=IRI(_XSD + "boolean"))
    if isinstance(value, int):
        return Literal(str(value), datatype=IRI(_XSD + "integer"))
    if isinstance(value, float):
        return Literal(repr(value), datatype=IRI(_XSD + "double"))
    return Literal(str(value))


def date_literal(iso_date: str) -> Literal:
    """Build an ``xsd:date`` literal from an ISO formatted string."""
    return Literal(iso_date, datatype=IRI(_XSD + "date"))


def datetime_literal(iso_datetime: str) -> Literal:
    """Build an ``xsd:dateTime`` literal from an ISO formatted string."""
    return Literal(iso_datetime, datatype=IRI(_XSD + "dateTime"))
