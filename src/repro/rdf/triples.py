"""Triples and triple patterns.

A :class:`Triple` is a concrete statement (no variables).  A
:class:`TriplePattern` may contain variables in any position and is the
building block of basic graph patterns in queries.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

from .terms import Term, Variable


class Triple:
    """A concrete RDF statement ``(subject, predicate, object)``."""

    __slots__ = ("subject", "predicate", "object")

    def __init__(self, subject: Term, predicate: Term, object: Term):
        for position, term in (("subject", subject), ("predicate", predicate), ("object", object)):
            if not isinstance(term, Term):
                raise TypeError("%s must be a Term, got %r" % (position, term))
            if isinstance(term, Variable):
                raise TypeError("a Triple cannot contain variables (%s)" % position)
        super().__setattr__("subject", subject)
        super().__setattr__("predicate", predicate)
        super().__setattr__("object", object)

    def __setattr__(self, name, value):
        raise AttributeError("Triple is immutable")

    def __iter__(self) -> Iterator[Term]:
        return iter((self.subject, self.predicate, self.object))

    def as_tuple(self) -> Tuple[Term, Term, Term]:
        return (self.subject, self.predicate, self.object)

    def n3(self) -> str:
        return "%s %s %s ." % (self.subject.n3(), self.predicate.n3(), self.object.n3())

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Triple)
            and other.subject == self.subject
            and other.predicate == self.predicate
            and other.object == self.object
        )

    def __hash__(self) -> int:
        return hash((self.subject, self.predicate, self.object))

    def __repr__(self) -> str:
        return "Triple(%r, %r, %r)" % (self.subject, self.predicate, self.object)


class TriplePattern:
    """A triple pattern: any position may be a :class:`Variable`."""

    __slots__ = ("subject", "predicate", "object")

    def __init__(self, subject: Term, predicate: Term, object: Term):
        for position, term in (("subject", subject), ("predicate", predicate), ("object", object)):
            if not isinstance(term, Term):
                raise TypeError("%s must be a Term, got %r" % (position, term))
        super().__setattr__("subject", subject)
        super().__setattr__("predicate", predicate)
        super().__setattr__("object", object)

    def __setattr__(self, name, value):
        raise AttributeError("TriplePattern is immutable")

    def __iter__(self) -> Iterator[Term]:
        return iter((self.subject, self.predicate, self.object))

    def as_tuple(self) -> Tuple[Term, Term, Term]:
        return (self.subject, self.predicate, self.object)

    def variables(self) -> Tuple[Variable, ...]:
        """Return the distinct variables of the pattern in position order."""
        seen = []
        for term in self:
            if isinstance(term, Variable) and term not in seen:
                seen.append(term)
        return tuple(seen)

    def is_concrete(self) -> bool:
        """Return True when the pattern contains no variables."""
        return not self.variables()

    def bound_positions(self) -> Tuple[bool, bool, bool]:
        """Return a (subject, predicate, object) tuple of "is constant" flags."""
        return tuple(not isinstance(term, Variable) for term in self)

    def substitute(self, bindings: dict) -> "TriplePattern":
        """Return a copy with variables replaced according to ``bindings``.

        Variables missing from ``bindings`` are left in place, so partial
        substitution (e.g. template parameter instantiation) is supported.
        """
        def replace(term: Term) -> Term:
            if isinstance(term, Variable) and term in bindings:
                return bindings[term]
            return term

        return TriplePattern(replace(self.subject), replace(self.predicate), replace(self.object))

    def matches(self, triple: Triple, bindings: Optional[dict] = None) -> Optional[dict]:
        """Match the pattern against a concrete triple.

        Returns the (possibly extended) binding dict on success, or ``None``
        when the triple does not match under the given bindings.
        """
        result = dict(bindings) if bindings else {}
        for pattern_term, data_term in zip(self, triple):
            if isinstance(pattern_term, Variable):
                bound = result.get(pattern_term)
                if bound is None:
                    result[pattern_term] = data_term
                elif bound != data_term:
                    return None
            elif pattern_term != data_term:
                return None
        return result

    def n3(self) -> str:
        return "%s %s %s ." % (self.subject.n3(), self.predicate.n3(), self.object.n3())

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, TriplePattern)
            and other.subject == self.subject
            and other.predicate == self.predicate
            and other.object == self.object
        )

    def __hash__(self) -> int:
        return hash(("TriplePattern", self.subject, self.predicate, self.object))

    def __repr__(self) -> str:
        return "TriplePattern(%r, %r, %r)" % (self.subject, self.predicate, self.object)
