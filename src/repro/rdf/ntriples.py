"""Minimal N-Triples serialisation and parsing.

Only the subset needed to persist generated datasets and reload them in
tests is supported: IRIs, blank nodes, plain / language-tagged / typed
literals with the usual escape sequences.  Lines starting with ``#`` and
blank lines are ignored.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, TextIO, Union

from .terms import BNode, IRI, Literal, Term
from .triples import Triple


class NTriplesError(ValueError):
    """Raised when a line cannot be parsed as an N-Triples statement."""


def serialize_triple(triple: Triple) -> str:
    """Serialise a single triple as one N-Triples line (without newline)."""
    return triple.n3()


def serialize(triples: Iterable[Triple]) -> str:
    """Serialise an iterable of triples to an N-Triples document."""
    lines = [serialize_triple(triple) for triple in triples]
    return "\n".join(lines) + ("\n" if lines else "")


def write(triples: Iterable[Triple], output: TextIO) -> int:
    """Write triples to a text stream; returns the number of lines written."""
    count = 0
    for triple in triples:
        output.write(serialize_triple(triple))
        output.write("\n")
        count += 1
    return count


# -- parsing --------------------------------------------------------------------

_ESCAPES = {"\\": "\\", '"': '"', "n": "\n", "r": "\r", "t": "\t"}


class _LineParser:
    """Character-level parser for one N-Triples line."""

    def __init__(self, line: str):
        self.line = line
        self.position = 0

    def error(self, message: str) -> NTriplesError:
        return NTriplesError("%s at column %d in %r" % (message, self.position, self.line))

    def skip_whitespace(self) -> None:
        while self.position < len(self.line) and self.line[self.position] in " \t":
            self.position += 1

    def at_end(self) -> bool:
        return self.position >= len(self.line)

    def peek(self) -> str:
        return self.line[self.position] if not self.at_end() else ""

    def expect(self, char: str) -> None:
        if self.peek() != char:
            raise self.error("expected %r" % char)
        self.position += 1

    def parse_iri(self) -> IRI:
        self.expect("<")
        end = self.line.find(">", self.position)
        if end < 0:
            raise self.error("unterminated IRI")
        value = self.line[self.position:end]
        self.position = end + 1
        return IRI(value)

    def parse_bnode(self) -> BNode:
        self.expect("_")
        self.expect(":")
        start = self.position
        while not self.at_end() and not self.line[self.position].isspace():
            self.position += 1
        label = self.line[start:self.position]
        if not label:
            raise self.error("empty blank node label")
        return BNode(label)

    def parse_literal(self) -> Literal:
        self.expect('"')
        chars: List[str] = []
        while True:
            if self.at_end():
                raise self.error("unterminated literal")
            char = self.line[self.position]
            self.position += 1
            if char == "\\":
                if self.at_end():
                    raise self.error("dangling escape")
                escape = self.line[self.position]
                self.position += 1
                if escape == "u":
                    hex_digits = self.line[self.position:self.position + 4]
                    if len(hex_digits) != 4:
                        raise self.error("bad unicode escape")
                    chars.append(chr(int(hex_digits, 16)))
                    self.position += 4
                elif escape in _ESCAPES:
                    chars.append(_ESCAPES[escape])
                else:
                    raise self.error("unknown escape \\%s" % escape)
            elif char == '"':
                break
            else:
                chars.append(char)
        lexical = "".join(chars)
        if self.peek() == "@":
            self.position += 1
            start = self.position
            while not self.at_end() and (self.line[self.position].isalnum() or self.line[self.position] == "-"):
                self.position += 1
            language = self.line[start:self.position]
            if not language:
                raise self.error("empty language tag")
            return Literal(lexical, language=language)
        if self.line[self.position:self.position + 2] == "^^":
            self.position += 2
            datatype = self.parse_iri()
            return Literal(lexical, datatype=datatype)
        return Literal(lexical)

    def parse_term(self, allow_literal: bool) -> Term:
        char = self.peek()
        if char == "<":
            return self.parse_iri()
        if char == "_":
            return self.parse_bnode()
        if char == '"':
            if not allow_literal:
                raise self.error("literal not allowed in this position")
            return self.parse_literal()
        raise self.error("unexpected character %r" % char)

    def parse_triple(self) -> Triple:
        self.skip_whitespace()
        subject = self.parse_term(allow_literal=False)
        self.skip_whitespace()
        predicate = self.parse_term(allow_literal=False)
        if not isinstance(predicate, IRI):
            raise self.error("predicate must be an IRI")
        self.skip_whitespace()
        object_ = self.parse_term(allow_literal=True)
        self.skip_whitespace()
        self.expect(".")
        self.skip_whitespace()
        if not self.at_end():
            raise self.error("trailing characters after '.'")
        return Triple(subject, predicate, object_)


def parse_term(text: str) -> Term:
    """Parse a single term in N-Triples surface form.

    Accepts exactly what :meth:`~repro.rdf.terms.Term.n3` produces — IRIs,
    blank nodes, plain / language-tagged / typed literals — which is also
    the cell encoding of SPARQL 1.1 TSV results (``repro.api.results``).
    """
    parser = _LineParser(text)
    term = parser.parse_term(allow_literal=True)
    parser.skip_whitespace()
    if not parser.at_end():
        raise parser.error("trailing characters after term")
    return term


def parse_line(line: str) -> Triple:
    """Parse one N-Triples line into a :class:`Triple`."""
    return _LineParser(line).parse_triple()


def parse(document: Union[str, Iterable[str]]) -> Iterator[Triple]:
    """Parse an N-Triples document (string or iterable of lines)."""
    lines = document.splitlines() if isinstance(document, str) else document
    for number, raw_line in enumerate(lines, start=1):
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            yield parse_line(line)
        except NTriplesError as error:
            raise NTriplesError("line %d: %s" % (number, error)) from error
