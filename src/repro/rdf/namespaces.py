"""Namespace helpers and the vocabularies used by the generators and queries."""

from __future__ import annotations

from .terms import IRI


class Namespace:
    """A convenience factory for IRIs sharing a common prefix.

    ``Namespace("http://example.org/")["thing"]`` and
    ``Namespace("http://example.org/").thing`` both yield
    ``IRI("http://example.org/thing")``.
    """

    def __init__(self, prefix: str):
        if not prefix:
            raise ValueError("namespace prefix must be non-empty")
        self.prefix = prefix

    def term(self, local_name: str) -> IRI:
        return IRI(self.prefix + local_name)

    def __getitem__(self, local_name: str) -> IRI:
        return self.term(local_name)

    def __getattr__(self, local_name: str) -> IRI:
        if local_name.startswith("_"):
            raise AttributeError(local_name)
        return self.term(local_name)

    def __contains__(self, iri: IRI) -> bool:
        return isinstance(iri, IRI) and iri.value.startswith(self.prefix)

    def local_name(self, iri: IRI) -> str:
        """Strip the namespace prefix from an IRI inside this namespace."""
        if iri not in self:
            raise ValueError("%r is not in namespace %r" % (iri, self.prefix))
        return iri.value[len(self.prefix):]

    def __repr__(self) -> str:
        return "Namespace(%r)" % self.prefix


# Standard vocabularies -------------------------------------------------------

RDF = Namespace("http://www.w3.org/1999/02/22-rdf-syntax-ns#")
RDFS = Namespace("http://www.w3.org/2000/01/rdf-schema#")
XSD = Namespace("http://www.w3.org/2001/XMLSchema#")
FOAF = Namespace("http://xmlns.com/foaf/0.1/")

#: rdf:type, frequently needed.
RDF_TYPE = RDF["type"]
RDFS_SUBCLASS_OF = RDFS["subClassOf"]
RDFS_LABEL = RDFS["label"]

# Benchmark vocabularies -------------------------------------------------------

#: BSBM-like vocabulary (mirrors the Berlin SPARQL Benchmark structure).
BSBM = Namespace("http://bsbm.example.org/vocabulary/")
BSBM_INST = Namespace("http://bsbm.example.org/instances/")

#: LDBC SNB-like vocabulary (mirrors the Social Network Benchmark structure).
SNB = Namespace("http://ldbc.example.org/vocabulary/")
SNB_INST = Namespace("http://ldbc.example.org/instances/")

#: Default prefix table used by the SPARQL parser when none are declared.
DEFAULT_PREFIXES = {
    "rdf": RDF.prefix,
    "rdfs": RDFS.prefix,
    "xsd": XSD.prefix,
    "foaf": FOAF.prefix,
    "bsbm": BSBM.prefix,
    "bsbm-inst": BSBM_INST.prefix,
    "sn": SNB.prefix,
    "sn-inst": SNB_INST.prefix,
}


def expand_qname(qname: str, prefixes: dict) -> IRI:
    """Expand a ``prefix:local`` qualified name using a prefix table."""
    if ":" not in qname:
        raise ValueError("not a qualified name: %r" % qname)
    prefix, local = qname.split(":", 1)
    if prefix not in prefixes:
        raise KeyError("unknown prefix %r in %r" % (prefix, qname))
    return IRI(prefixes[prefix] + local)
