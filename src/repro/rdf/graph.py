"""User-facing graph container.

:class:`Graph` is the object the data generators fill and the query engine
consumes.  It wraps a :class:`~repro.store.triple_store.TripleStore` and adds
small conveniences: triple construction from raw terms, namespace-aware
serialisation and value lookups used by the parameter-domain miner.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Set

from ..store.triple_store import TripleStore
from .terms import IRI, Literal, Term, Variable
from .triples import Triple, TriplePattern


class Graph:
    """A mutable RDF graph backed by the dictionary-encoded triple store."""

    def __init__(self, store: Optional[TripleStore] = None):
        self.store = store if store is not None else TripleStore()

    def __len__(self) -> int:
        return len(self.store)

    # -- mutation -----------------------------------------------------------

    def add(self, subject: Term, predicate: Term, object: Term) -> None:
        """Add a single statement built from three concrete terms."""
        self.store.add(Triple(subject, predicate, object))

    def add_triple(self, triple: Triple) -> None:
        self.store.add(triple)

    def add_all(self, triples: Iterable[Triple]) -> None:
        self.store.add_many(triples)

    def finalise(self) -> None:
        """Flush staged triples into the store indexes."""
        self.store.finalise()

    # -- access -------------------------------------------------------------

    def __contains__(self, triple: Triple) -> bool:
        return self.store.contains(triple)

    def triples(
        self,
        subject: Optional[Term] = None,
        predicate: Optional[Term] = None,
        object: Optional[Term] = None,
    ) -> Iterator[Triple]:
        """Iterate triples matching the given constants (None = wildcard)."""
        pattern = TriplePattern(
            subject if subject is not None else Variable("s"),
            predicate if predicate is not None else Variable("p"),
            object if object is not None else Variable("o"),
        )
        return self.store.triples(pattern)

    def subjects(self, predicate: Optional[Term] = None, object: Optional[Term] = None) -> List[Term]:
        """Distinct subjects of triples matching ``predicate`` / ``object``."""
        seen: Set[Term] = set()
        ordered: List[Term] = []
        for triple in self.triples(None, predicate, object):
            if triple.subject not in seen:
                seen.add(triple.subject)
                ordered.append(triple.subject)
        return ordered

    def objects(self, subject: Optional[Term] = None, predicate: Optional[Term] = None) -> List[Term]:
        """Distinct objects of triples matching ``subject`` / ``predicate``."""
        seen: Set[Term] = set()
        ordered: List[Term] = []
        for triple in self.triples(subject, predicate, None):
            if triple.object not in seen:
                seen.add(triple.object)
                ordered.append(triple.object)
        return ordered

    def value(self, subject: Term, predicate: Term) -> Optional[Term]:
        """Return the first object of ``(subject, predicate, ?)`` or None."""
        for triple in self.triples(subject, predicate, None):
            return triple.object
        return None

    def predicates(self) -> List[Term]:
        """Distinct predicates occurring in the graph."""
        seen: Set[Term] = set()
        ordered: List[Term] = []
        for triple in self.triples():
            if triple.predicate not in seen:
                seen.add(triple.predicate)
                ordered.append(triple.predicate)
        return ordered

    # -- serialisation ---------------------------------------------------------

    def to_ntriples(self) -> str:
        """Serialise the graph in N-Triples syntax (sorted, deterministic)."""
        lines = sorted(triple.n3() for triple in self.triples())
        return "\n".join(lines) + ("\n" if lines else "")

    @classmethod
    def from_triples(cls, triples: Iterable[Triple]) -> "Graph":
        graph = cls()
        graph.add_all(triples)
        graph.finalise()
        return graph


def literal_values(graph: Graph, predicate: Term) -> List[Literal]:
    """All literal objects of a predicate (helper for domain mining)."""
    return [term for term in graph.objects(None, predicate) if isinstance(term, Literal)]


def iri_values(graph: Graph, predicate: Term) -> List[IRI]:
    """All IRI objects of a predicate (helper for domain mining)."""
    return [term for term in graph.objects(None, predicate) if isinstance(term, IRI)]
