"""Dictionary encoding of RDF terms.

Triple stores almost universally map terms to dense integer identifiers and
store triples as integer tuples; the indexes, statistics and the join
operators in this library all work on identifiers.  :class:`TermDictionary`
provides the bidirectional mapping.

Identifiers are assigned in insertion order starting at 0, which keeps the
encoding deterministic for a deterministic data generator — a property the
test suite and the experiment harness rely on.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional

from .terms import Term


class TermDictionary:
    """Bidirectional mapping between :class:`Term` objects and integer ids."""

    def __init__(self):
        self._term_to_id: Dict[Term, int] = {}
        self._id_to_term: List[Term] = []

    def __len__(self) -> int:
        return len(self._id_to_term)

    def __contains__(self, term: Term) -> bool:
        return term in self._term_to_id

    def encode(self, term: Term) -> int:
        """Return the id of ``term``, assigning a fresh one if necessary."""
        term_id = self._term_to_id.get(term)
        if term_id is None:
            term_id = len(self._id_to_term)
            self._term_to_id[term] = term_id
            self._id_to_term.append(term)
        return term_id

    def encode_many(self, terms: Iterable[Term]) -> List[int]:
        """Encode an iterable of terms, assigning fresh ids where needed."""
        return [self.encode(term) for term in terms]

    def lookup(self, term: Term) -> Optional[int]:
        """Return the id of ``term`` or ``None`` if it has never been seen.

        Unlike :meth:`encode` this never mutates the dictionary, which makes
        it the right call for query-time constant lookup: an unknown constant
        means an empty result, not a new dictionary entry.
        """
        return self._term_to_id.get(term)

    def decode(self, term_id: int) -> Term:
        """Return the term for an id; raises ``KeyError`` for unknown ids."""
        if 0 <= term_id < len(self._id_to_term):
            return self._id_to_term[term_id]
        raise KeyError("unknown term id %r" % term_id)

    def decode_many(self, term_ids: Iterable[int]) -> List[Term]:
        return [self.decode(term_id) for term_id in term_ids]

    def terms(self) -> Iterator[Term]:
        """Iterate over all terms in id order."""
        return iter(self._id_to_term)

    def items(self) -> Iterator[tuple]:
        """Iterate over ``(term, id)`` pairs in id order."""
        for term_id, term in enumerate(self._id_to_term):
            yield term, term_id
