"""RDF data model substrate: terms, triples, namespaces, graphs, N-Triples."""

from .dictionary import TermDictionary
from .graph import Graph
from .namespaces import (
    BSBM,
    BSBM_INST,
    DEFAULT_PREFIXES,
    FOAF,
    Namespace,
    RDF,
    RDFS,
    RDF_TYPE,
    RDFS_LABEL,
    RDFS_SUBCLASS_OF,
    SNB,
    SNB_INST,
    XSD,
    expand_qname,
)
from .terms import (
    BNode,
    IRI,
    Literal,
    Term,
    Variable,
    date_literal,
    datetime_literal,
    typed_literal,
)
from .triples import Triple, TriplePattern

__all__ = [
    "BNode",
    "BSBM",
    "BSBM_INST",
    "DEFAULT_PREFIXES",
    "FOAF",
    "Graph",
    "IRI",
    "Literal",
    "Namespace",
    "RDF",
    "RDFS",
    "RDF_TYPE",
    "RDFS_LABEL",
    "RDFS_SUBCLASS_OF",
    "SNB",
    "SNB_INST",
    "Term",
    "TermDictionary",
    "Triple",
    "TriplePattern",
    "Variable",
    "XSD",
    "date_literal",
    "datetime_literal",
    "expand_qname",
    "typed_literal",
]
