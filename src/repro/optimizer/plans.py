"""Physical plan representation.

A plan is a tree of :class:`PlanNode` objects.  The join-ordering search
builds the join part of the tree (scans + joins + eagerly applied filters);
the remaining algebra operators (optional, union, grouping, ordering,
projection, distinct, slice) are wrapped around it one-to-one.

Two notions matter for the paper:

* ``estimated_cout`` — the paper's cost function ``Cout`` evaluated over the
  optimizer's *estimated* cardinalities; the optimizer minimises this.
* ``signature()`` — a canonical string identifying the plan *shape* (which
  patterns are joined in which order, with which access paths).  The
  parameter-clustering problem of Section III groups bindings by exactly
  this signature.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..rdf.terms import Variable
from ..rdf.triples import TriplePattern
from ..sparql.ast import Expression, OrderCondition


class PlanNode:
    """Base class for plan nodes."""

    def __init__(self):
        self.estimated_cardinality: float = 0.0
        #: estimated distinct-value counts per variable, used during join ordering
        self.variable_counts: Dict[Variable, float] = {}

    def children(self) -> Tuple["PlanNode", ...]:
        return ()

    def output_variables(self) -> Tuple[Variable, ...]:
        seen: List[Variable] = []
        for child in self.children():
            for variable in child.output_variables():
                if variable not in seen:
                    seen.append(variable)
        return tuple(seen)

    # -- cost -----------------------------------------------------------------

    def estimated_cout(self) -> float:
        """The paper's Cout over estimated cardinalities.

        Scans contribute 0; every join contributes its (estimated) output
        cardinality; other operators are transparent, matching the paper's
        definition which only charges intermediate join results.
        """
        total = 0.0
        for child in self.children():
            total += child.estimated_cout()
        return total

    # -- identity ----------------------------------------------------------------

    def signature(self) -> str:
        """Canonical description of the plan shape (not of its cardinalities)."""
        raise NotImplementedError

    def fingerprint(self) -> str:
        """Full canonical identity of the plan, *including* constants.

        Where :meth:`signature` deliberately abstracts over the concrete
        parameter binding (two bindings of one template share a signature —
        that is the paper's plan-shape identity), the fingerprint includes
        every constant term, filter/BIND expression, sort key, projection
        list and slice bound: two plans share a fingerprint iff they compute
        the same result over the same store contents.  This is the identity
        the result cache and materialized views key on — keying on
        ``signature()`` would alias different bindings of one template.
        """
        raise NotImplementedError

    def pretty(self, indent: int = 0, annotate=None) -> str:
        """Human-readable multi-line plan rendering.

        ``annotate`` optionally maps a plan node to a short extra label
        (the executors use it to show the physical operator each node
        lowers to — see ``QueryEngine.explain``).
        """
        line = "  " * indent + self.describe()
        if annotate is not None:
            suffix = annotate(self)
            if suffix:
                line = "%s  · %s" % (line, suffix)
        parts = [line]
        for child in self.children():
            parts.append(child.pretty(indent + 1, annotate))
        return "\n".join(parts)

    def describe(self) -> str:
        return self.__class__.__name__

    def __repr__(self) -> str:
        return "%s(card=%.1f)" % (self.__class__.__name__, self.estimated_cardinality)


class ScanNode(PlanNode):
    """Index scan for a single triple pattern.

    ``pattern_index`` is the position of the pattern in the original BGP —
    it makes scan signatures stable across bindings of the same template, so
    that "the same plan with a different constant" yields the same signature.
    """

    def __init__(self, pattern: TriplePattern, pattern_index: int, cardinality: float):
        super().__init__()
        self.pattern = pattern
        self.pattern_index = pattern_index
        self.estimated_cardinality = cardinality

    def output_variables(self) -> Tuple[Variable, ...]:
        return self.pattern.variables()

    def estimated_cout(self) -> float:
        return 0.0

    def access_path(self) -> str:
        """Which positions are bound, e.g. ``"s?o"`` for bound s and o."""
        mask = self.pattern.bound_positions()
        return "".join(letter if bound else "?" for letter, bound in zip("spo", mask))

    def signature(self) -> str:
        return "scan[%d:%s]" % (self.pattern_index, self.access_path())

    def fingerprint(self) -> str:
        return "scan(%s)" % " ".join(term.n3() for term in self.pattern)

    def describe(self) -> str:
        return "Scan %s (pattern %d, est. %.0f rows)" % (
            self.access_path(),
            self.pattern_index,
            self.estimated_cardinality,
        )


class SingletonNode(PlanNode):
    """Produces exactly one empty solution (the result of an empty BGP)."""

    def __init__(self):
        super().__init__()
        self.estimated_cardinality = 1.0

    def signature(self) -> str:
        return "singleton"

    def fingerprint(self) -> str:
        return "singleton"

    def describe(self) -> str:
        return "Singleton"


class FilterNode(PlanNode):
    """A filter applied as soon as its variables are bound."""

    def __init__(self, expression: Expression, child: PlanNode, cardinality: float):
        super().__init__()
        self.expression = expression
        self.child = child
        self.estimated_cardinality = cardinality
        self.variable_counts = dict(child.variable_counts)

    def children(self):
        return (self.child,)

    def signature(self) -> str:
        return "filter(%s)" % self.child.signature()

    def fingerprint(self) -> str:
        return "filter[%r](%s)" % (self.expression, self.child.fingerprint())

    def describe(self) -> str:
        return "Filter (est. %.0f rows)" % self.estimated_cardinality


class JoinNode(PlanNode):
    """Join of two sub-plans on their shared variables.

    Three physical methods exist: ``hash`` (build/probe), ``nestedloop``
    (cross products) and ``lookup`` — an index nested-loop join whose right
    side is a triple-pattern scan probed through the permutation indexes for
    every left row.  ``lookup`` is what RDF engines use for most joins; it
    makes the executed work proportional to the data actually touched by the
    parameter binding instead of to the size of the whole relation.
    """

    HASH = "hash"
    NESTED_LOOP = "nestedloop"
    LOOKUP = "lookup"

    def __init__(
        self,
        left: PlanNode,
        right: PlanNode,
        join_variables: Sequence[Variable],
        cardinality: float,
        method: str = HASH,
    ):
        super().__init__()
        self.left = left
        self.right = right
        self.join_variables = list(join_variables)
        self.estimated_cardinality = cardinality
        self.method = method

    def children(self):
        return (self.left, self.right)

    def estimated_cout(self) -> float:
        return self.estimated_cardinality + self.left.estimated_cout() + self.right.estimated_cout()

    def signature(self) -> str:
        return "%s(%s,%s)" % (self.method, self.left.signature(), self.right.signature())

    def fingerprint(self) -> str:
        return "%s[%s](%s,%s)" % (
            self.method,
            ",".join(variable.n3() for variable in self.join_variables),
            self.left.fingerprint(),
            self.right.fingerprint(),
        )

    def describe(self) -> str:
        variables = ", ".join(variable.n3() for variable in self.join_variables) or "cross"
        label = {self.HASH: "Hash", self.NESTED_LOOP: "NestedLoop", self.LOOKUP: "IndexLookup"}[self.method]
        return "%sJoin on [%s] (est. %.0f rows)" % (label, variables, self.estimated_cardinality)


class LeftJoinNode(PlanNode):
    """OPTIONAL."""

    def __init__(self, left: PlanNode, right: PlanNode, condition: Optional[Expression], cardinality: float):
        super().__init__()
        self.left = left
        self.right = right
        self.condition = condition
        self.estimated_cardinality = cardinality

    def children(self):
        return (self.left, self.right)

    def estimated_cout(self) -> float:
        return self.estimated_cardinality + self.left.estimated_cout() + self.right.estimated_cout()

    def signature(self) -> str:
        return "leftjoin(%s,%s)" % (self.left.signature(), self.right.signature())

    def fingerprint(self) -> str:
        return "leftjoin[%r](%s,%s)" % (
            self.condition,
            self.left.fingerprint(),
            self.right.fingerprint(),
        )

    def describe(self) -> str:
        return "LeftJoin (est. %.0f rows)" % self.estimated_cardinality


class UnionNode(PlanNode):
    def __init__(self, alternatives: Sequence[PlanNode], cardinality: float):
        super().__init__()
        self.alternatives = list(alternatives)
        self.estimated_cardinality = cardinality

    def children(self):
        return tuple(self.alternatives)

    def signature(self) -> str:
        return "union(%s)" % ",".join(child.signature() for child in self.alternatives)

    def fingerprint(self) -> str:
        return "union(%s)" % ",".join(child.fingerprint() for child in self.alternatives)

    def describe(self) -> str:
        return "Union (est. %.0f rows)" % self.estimated_cardinality


class ExtendNode(PlanNode):
    def __init__(self, child: PlanNode, variable: Variable, expression: Expression):
        super().__init__()
        self.child = child
        self.variable = variable
        self.expression = expression
        self.estimated_cardinality = child.estimated_cardinality

    def children(self):
        return (self.child,)

    def output_variables(self) -> Tuple[Variable, ...]:
        base = list(self.child.output_variables())
        if self.variable not in base:
            base.append(self.variable)
        return tuple(base)

    def signature(self) -> str:
        return "extend(%s)" % self.child.signature()

    def fingerprint(self) -> str:
        return "extend[%s=%r](%s)" % (
            self.variable.n3(),
            self.expression,
            self.child.fingerprint(),
        )

    def describe(self) -> str:
        return "Extend %s" % self.variable.n3()


class AggregateNode(PlanNode):
    def __init__(self, child: PlanNode, group_variables, aggregates, cardinality: float):
        super().__init__()
        self.child = child
        self.group_variables = list(group_variables)
        self.aggregates = list(aggregates)
        self.estimated_cardinality = cardinality

    def children(self):
        return (self.child,)

    def output_variables(self) -> Tuple[Variable, ...]:
        result = list(self.group_variables)
        for variable, _aggregate in self.aggregates:
            if variable not in result:
                result.append(variable)
        return tuple(result)

    def signature(self) -> str:
        return "aggregate(%s)" % self.child.signature()

    def fingerprint(self) -> str:
        return "aggregate[%s;%s](%s)" % (
            ",".join(variable.n3() for variable in self.group_variables),
            ",".join(
                "%s=%r" % (variable.n3(), aggregate)
                for variable, aggregate in self.aggregates
            ),
            self.child.fingerprint(),
        )

    def describe(self) -> str:
        return "Aggregate by [%s] (est. %.0f groups)" % (
            ", ".join(variable.n3() for variable in self.group_variables),
            self.estimated_cardinality,
        )


class SortNode(PlanNode):
    def __init__(self, child: PlanNode, conditions: Sequence[OrderCondition]):
        super().__init__()
        self.child = child
        self.conditions = list(conditions)
        self.estimated_cardinality = child.estimated_cardinality

    def children(self):
        return (self.child,)

    def signature(self) -> str:
        return "sort(%s)" % self.child.signature()

    def fingerprint(self) -> str:
        return "sort[%s](%s)" % (
            ";".join(repr(condition) for condition in self.conditions),
            self.child.fingerprint(),
        )

    def describe(self) -> str:
        return "Sort (%d keys)" % len(self.conditions)


class ProjectNode(PlanNode):
    def __init__(self, child: PlanNode, variables: Sequence[Variable]):
        super().__init__()
        self.child = child
        self.projected = list(variables)
        self.estimated_cardinality = child.estimated_cardinality

    def children(self):
        return (self.child,)

    def output_variables(self) -> Tuple[Variable, ...]:
        return tuple(self.projected)

    def signature(self) -> str:
        return "project(%s)" % self.child.signature()

    def fingerprint(self) -> str:
        return "project[%s](%s)" % (
            ",".join(variable.n3() for variable in self.projected),
            self.child.fingerprint(),
        )

    def describe(self) -> str:
        return "Project [%s]" % ", ".join(variable.n3() for variable in self.projected)


class DistinctNode(PlanNode):
    def __init__(self, child: PlanNode):
        super().__init__()
        self.child = child
        self.estimated_cardinality = child.estimated_cardinality

    def children(self):
        return (self.child,)

    def signature(self) -> str:
        return "distinct(%s)" % self.child.signature()

    def fingerprint(self) -> str:
        return "distinct(%s)" % self.child.fingerprint()

    def describe(self) -> str:
        return "Distinct"


class LimitNode(PlanNode):
    def __init__(self, child: PlanNode, limit: Optional[int], offset: int = 0):
        super().__init__()
        self.child = child
        self.limit = limit
        self.offset = offset
        if limit is not None:
            self.estimated_cardinality = min(child.estimated_cardinality, limit)
        else:
            self.estimated_cardinality = child.estimated_cardinality

    def children(self):
        return (self.child,)

    def signature(self) -> str:
        return "limit(%s)" % self.child.signature()

    def fingerprint(self) -> str:
        return "limit[%r,%d](%s)" % (self.limit, self.offset, self.child.fingerprint())

    def describe(self) -> str:
        return "Limit %r offset %d" % (self.limit, self.offset)


class CachedViewNode(PlanNode):
    """A registered materialized view substituted into a plan.

    Wraps the original subtree (``child``) and the view handle the vector
    executor consults: on a view hit the executor returns the materialized
    id-space batch like a scan; on a miss (or in the tuple executor, which
    has no id-space batches to reuse) the child subtree executes unchanged,
    so rows are identical either way — only the work differs.
    """

    def __init__(self, view, child: PlanNode):
        super().__init__()
        self.view = view
        self.child = child
        self.estimated_cardinality = child.estimated_cardinality
        self.variable_counts = dict(child.variable_counts)

    def children(self):
        return (self.child,)

    def output_variables(self) -> Tuple[Variable, ...]:
        return self.child.output_variables()

    def estimated_cout(self) -> float:
        # A materialized view answers like a scan: no intermediate results.
        return 0.0

    def signature(self) -> str:
        return "view:%s(%s)" % (self.view.name, self.child.signature())

    def fingerprint(self) -> str:
        return "view(%s)" % self.child.fingerprint()

    def describe(self) -> str:
        return "CachedView %s (est. %.0f rows)" % (
            self.view.name,
            self.estimated_cardinality,
        )


def cached_fingerprint(node: PlanNode) -> str:
    """Memoized :meth:`PlanNode.fingerprint` of a finished plan.

    Plans are immutable once the optimizer hands them over, and the plan
    cache re-serves the same tree for thousands of executions — recomputing
    the full recursive fingerprint on every one of them was the single
    largest cost of serving a result-cache hit.  Only call this on plans
    that are done being built (view substitution rewrites child links
    in place during ``Optimizer.optimize``).
    """
    memo = node.__dict__.get("_fingerprint_memo")
    if memo is None:
        memo = node.__dict__["_fingerprint_memo"] = node.fingerprint()
    return memo


def join_tree_signature(node: PlanNode) -> str:
    """Signature of only the join part of the plan.

    Strips the solution modifiers that are identical for every binding of a
    template, so that classification focuses on the join order — the part of
    the plan the paper's condition (a) is about.  Memoized per plan object
    (every execution record of a plan-cache hit asks for it).
    """
    while isinstance(node, (ProjectNode, DistinctNode, LimitNode, SortNode, ExtendNode, AggregateNode)):
        node = node.child
    memo = node.__dict__.get("_signature_memo")
    if memo is None:
        memo = node.__dict__["_signature_memo"] = node.signature()
    return memo


def collect_nodes(node: PlanNode) -> List[PlanNode]:
    """Flatten the plan tree in pre-order (used by tests and reporting)."""
    result = [node]
    for child in node.children():
        result.extend(collect_nodes(child))
    return result
