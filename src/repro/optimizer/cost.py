"""The paper's ``Cout`` cost function.

Section III defines::

    Cout(T) = 0                                  if T is a scan
    Cout(T) = |T| + Cout(T1) + Cout(T2)          if T = T1 joins T2

i.e. the sum of intermediate result sizes, oblivious to the storage model.
Two flavours are provided:

* :func:`estimated_cout` — over the optimizer's estimated cardinalities
  (what join ordering minimises);
* :func:`actual_cout` — over the true intermediate sizes recorded by the
  executor (what the clustering of Section III uses as the cost of the
  optimal plan for a concrete binding).
"""

from __future__ import annotations

from typing import Dict

from .plans import (
    AggregateNode,
    DistinctNode,
    ExtendNode,
    FilterNode,
    JoinNode,
    LeftJoinNode,
    LimitNode,
    PlanNode,
    ProjectNode,
    ScanNode,
    SortNode,
    UnionNode,
)


def estimated_cout(plan: PlanNode) -> float:
    """Cout over estimated cardinalities (delegates to the plan tree)."""
    return plan.estimated_cout()


def actual_cout(plan: PlanNode, observed_cardinalities: Dict[int, int]) -> float:
    """Cout over observed intermediate sizes.

    ``observed_cardinalities`` maps ``id(plan node)`` to the number of rows
    the node actually produced during execution (the executor fills this).
    Only join-like nodes (inner joins, left joins, unions) are charged, per
    the paper's definition; scans and unary modifiers contribute nothing.
    """
    total = 0.0
    stack = [plan]
    while stack:
        node = stack.pop()
        if isinstance(node, (JoinNode, LeftJoinNode, UnionNode)):
            total += observed_cardinalities.get(id(node), 0)
        stack.extend(node.children())
    return total


#: Per-tuple work constants for the runtime simulation (milliseconds/tuple).
#: They model a column-store-ish engine: scans are cheap and sequential,
#: hash joins pay a build and a probe, sorts pay n log n, aggregation is
#: hash-based.  The absolute values are not meant to match the paper's
#: hardware; only the proportions matter for reproducing runtime *shapes*.
OPERATOR_COSTS = {
    "scan_tuple": 0.00040,
    "index_lookup": 0.00400,
    "hash_build_tuple": 0.00110,
    "hash_probe_tuple": 0.00075,
    "join_output_tuple": 0.00060,
    "nested_loop_pair": 0.00015,
    "filter_tuple": 0.00020,
    "sort_tuple_log": 0.00035,
    "aggregate_tuple": 0.00080,
    "distinct_tuple": 0.00045,
    "project_tuple": 0.00008,
    "extend_tuple": 0.00025,
    "union_tuple": 0.00010,
    "leftjoin_probe_tuple": 0.00075,
    "output_tuple": 0.00050,
    "query_overhead_ms": 0.05,
}


def operator_cost(name: str) -> float:
    """Look up one operator cost constant (raises for unknown names)."""
    return OPERATOR_COSTS[name]


def describe_cost_model() -> str:
    """Human-readable dump of the cost constants (for reports and docs)."""
    lines = ["Runtime model constants (ms per tuple unless noted):"]
    for name in sorted(OPERATOR_COSTS):
        lines.append("  %-22s %.5f" % (name, OPERATOR_COSTS[name]))
    return "\n".join(lines)
