"""End-to-end query optimizer.

Translates a logical algebra tree into a physical plan: basic graph
patterns go through join ordering (exact DP by default), the remaining
algebra operators are mapped one-to-one, and cardinalities are propagated
so that ``estimated_cout`` is defined for the whole plan.
"""

from __future__ import annotations

from typing import List

from ..sparql import algebra
from ..sparql.ast import Expression
from ..store.statistics import StoreStatistics
from .cardinality import CardinalityEstimator
from .join_ordering import make_orderer
from .plans import (
    AggregateNode,
    DistinctNode,
    ExtendNode,
    FilterNode,
    JoinNode,
    LeftJoinNode,
    LimitNode,
    PlanNode,
    ProjectNode,
    SingletonNode,
    SortNode,
    UnionNode,
)


class Optimizer:
    """Builds physical plans that minimise the paper's estimated ``Cout``.

    Parameters
    ----------
    statistics:
        Collected :class:`~repro.store.statistics.StoreStatistics` of the
        dataset being queried.
    join_ordering:
        ``"dp"`` (exact, default) or ``"greedy"``.
    """

    def __init__(self, statistics: StoreStatistics, join_ordering: str = "dp"):
        self.statistics = statistics
        self.estimator = CardinalityEstimator(statistics)
        self.join_ordering = join_ordering
        self._orderer = make_orderer(join_ordering, self.estimator)
        #: declared materialized views (a
        #: :class:`repro.service.result_cache.MaterializedViewRegistry`),
        #: or None.  Set through ``QueryEngine.register_view``; shared by
        #: sibling engines, so every executor substitutes the same views.
        self.views = None

    # -- public API ---------------------------------------------------------------

    def attach_feedback(self, feedback) -> "Optimizer":
        """Make this optimizer's estimates learn from runtime feedback.

        Replaces the estimator with a
        :class:`~repro.adaptive.corrections.CorrectedCardinalityEstimator`
        over ``feedback`` and rebuilds the join orderer around it.  The
        ordering algorithms themselves are untouched — corrected
        cardinalities simply flow into the same cost decisions through the
        :meth:`CardinalityEstimator.correct_node` hook.
        """
        from ..adaptive.corrections import CorrectedCardinalityEstimator

        self.estimator = CorrectedCardinalityEstimator(self.estimator, feedback)
        self._orderer = make_orderer(self.join_ordering, self.estimator)
        return self

    def optimize(self, node: algebra.AlgebraNode) -> PlanNode:
        """Return the physical plan for a logical algebra tree."""
        plan = self._optimize(node, pending_filters=[])
        if self.views is not None:
            plan = self.views.substitute(plan)
        return plan

    # -- recursive translation -------------------------------------------------------

    def _optimize(self, node: algebra.AlgebraNode, pending_filters: List[Expression]) -> PlanNode:
        if isinstance(node, algebra.Filter):
            # Collect filter conjuncts so they can be pushed into the BGP
            # below — but only through pattern-combining operators.  Filters
            # over aggregate or BIND outputs (HAVING) must stay above the
            # node that introduces those variables.
            if isinstance(node.child, (algebra.BGP, algebra.Filter, algebra.Join, algebra.LeftJoin, algebra.Union)):
                return self._optimize(node.child, pending_filters + [node.expression])
            child = self._optimize(node.child, pending_filters)
            return self._wrap_filters(child, [node.expression])
        if isinstance(node, algebra.BGP):
            return self._optimize_bgp(node, pending_filters)
        if isinstance(node, algebra.Join):
            return self._wrap_filters(self._optimize_join(node), pending_filters)
        if isinstance(node, algebra.LeftJoin):
            return self._wrap_filters(self._optimize_left_join(node), pending_filters)
        if isinstance(node, algebra.Union):
            return self._wrap_filters(self._optimize_union(node), pending_filters)
        if isinstance(node, algebra.Extend):
            # Filters over the BIND output must stay above the Extend; the
            # rest may keep sinking toward the BGP.
            blocked = [
                expression
                for expression in pending_filters
                if node.variable in expression.variables()
            ]
            sinking = [
                expression for expression in pending_filters if expression not in blocked
            ]
            child = self._optimize(node.child, sinking)
            return self._wrap_filters(
                ExtendNode(child, node.variable, node.expression), blocked
            )
        if isinstance(node, algebra.Group):
            return self._optimize_group(node, pending_filters)
        if isinstance(node, algebra.OrderBy):
            child = self._optimize(node.child, pending_filters)
            return SortNode(child, node.conditions)
        if isinstance(node, algebra.Project):
            child = self._optimize(node.child, pending_filters)
            return ProjectNode(child, node.projected)
        if isinstance(node, algebra.Distinct):
            child = self._optimize(node.child, pending_filters)
            return self.estimator.correct_node(DistinctNode(child))
        if isinstance(node, algebra.Slice):
            child = self._optimize(node.child, pending_filters)
            return LimitNode(child, node.limit, node.offset)
        raise TypeError("unsupported algebra node %r" % (node,))

    # -- node-specific handling ---------------------------------------------------------

    def _optimize_bgp(self, node: algebra.BGP, pending_filters: List[Expression]) -> PlanNode:
        if not node.patterns:
            # An empty BGP yields exactly one empty solution.
            return self._wrap_filters(SingletonNode(), pending_filters)
        plan = self._orderer.order(node.patterns, pending_filters)
        # Any filter whose variables are still not fully bound (e.g. they
        # refer to OPTIONAL variables) stays above; the executor treats an
        # unbound variable in a filter as an error per SPARQL semantics, so
        # keep only the leftovers that the ordering did not consume.
        applied_expressions = _collect_filter_expressions(plan)
        leftovers = [expression for expression in pending_filters if expression not in applied_expressions]
        return self._wrap_filters(plan, leftovers)

    def _optimize_join(self, node: algebra.Join) -> PlanNode:
        left = self._optimize(node.left, [])
        right = self._optimize(node.right, [])
        from .cardinality import shared_variables

        join_variables = shared_variables(left.output_variables(), right.output_variables())
        cardinality, counts = self.estimator.join_cardinality(
            left.estimated_cardinality,
            right.estimated_cardinality,
            left.variable_counts,
            right.variable_counts,
        )
        method = JoinNode.HASH if join_variables else JoinNode.NESTED_LOOP
        join = JoinNode(left, right, join_variables, cardinality, method)
        join.variable_counts = counts
        return self.estimator.correct_node(join)

    def _optimize_left_join(self, node: algebra.LeftJoin) -> PlanNode:
        left = self._optimize(node.left, [])
        right = self._optimize(node.right, [])
        cardinality, counts = self.estimator.join_cardinality(
            left.estimated_cardinality,
            right.estimated_cardinality,
            left.variable_counts,
            right.variable_counts,
        )
        # OPTIONAL never reduces the left side below its own cardinality.
        cardinality = max(cardinality, left.estimated_cardinality)
        plan = LeftJoinNode(left, right, node.condition, cardinality)
        plan.variable_counts = counts
        return self.estimator.correct_node(plan)

    def _optimize_union(self, node: algebra.Union) -> PlanNode:
        children = [self._optimize(alternative, []) for alternative in node.alternatives]
        cardinality = sum(child.estimated_cardinality for child in children)
        plan = UnionNode(children, cardinality)
        counts = {}
        for child in children:
            for variable, count in child.variable_counts.items():
                counts[variable] = counts.get(variable, 0.0) + count
        plan.variable_counts = counts
        return self.estimator.correct_node(plan)

    def _optimize_group(self, node: algebra.Group, pending_filters: List[Expression]) -> PlanNode:
        child = self._optimize(node.child, pending_filters)
        if node.group_variables:
            group_cardinality = 1.0
            for variable in node.group_variables:
                group_cardinality *= max(1.0, child.variable_counts.get(variable, child.estimated_cardinality))
            group_cardinality = min(group_cardinality, child.estimated_cardinality)
        else:
            group_cardinality = 1.0
        return self.estimator.correct_node(
            AggregateNode(child, node.group_variables, node.aggregates, max(1.0, group_cardinality))
        )

    # -- helpers -----------------------------------------------------------------------

    def _wrap_filters(self, plan: PlanNode, filters: List[Expression]) -> PlanNode:
        for expression in filters:
            selectivity = self.estimator.filter_selectivity(expression)
            plan = self.estimator.correct_node(
                FilterNode(expression, plan, plan.estimated_cardinality * selectivity)
            )
        return plan


def _collect_filter_expressions(plan: PlanNode) -> List[Expression]:
    expressions: List[Expression] = []
    stack = [plan]
    while stack:
        node = stack.pop()
        if isinstance(node, FilterNode):
            expressions.append(node.expression)
        stack.extend(node.children())
    return expressions
