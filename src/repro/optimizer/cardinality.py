"""Cardinality estimation.

Single triple patterns are estimated *exactly* through the store's
permutation indexes (a pair of binary searches per pattern).  Join
cardinalities use the textbook independence model over per-variable
distinct-value counts, with containment-of-values for shared variables —
the same family of assumptions real RDF optimizers use, so the estimator is
good on star joins and degrades on correlated chains, which is precisely
the behaviour the paper's E4 example exploits.

Filter selectivities use standard magic constants (equality 0.1,
inequality/range 0.3, regex 0.25) unless the filter compares a variable to a
constant on a predicate whose histogram we know, in which case the exact
fraction is used.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from ..rdf.terms import Variable
from ..rdf.triples import TriplePattern
from ..sparql.ast import (
    BinaryExpression,
    Expression,
    FunctionCall,
    TermExpression,
    UnaryExpression,
)
from ..store.statistics import StoreStatistics


#: Default selectivities per operator kind when no histogram applies.
DEFAULT_SELECTIVITY = {
    "=": 0.10,
    "!=": 0.90,
    "<": 0.30,
    "<=": 0.30,
    ">": 0.30,
    ">=": 0.30,
    "regex": 0.25,
    "bound": 0.50,
    "other": 0.50,
}


class CardinalityEstimator:
    """Estimates pattern, join and filter cardinalities from store statistics."""

    def __init__(self, statistics: StoreStatistics):
        self.statistics = statistics
        if not statistics._collected:
            statistics.collect()

    # -- feedback hook ----------------------------------------------------------

    def correct_node(self, node):
        """Adjust a freshly built plan node's estimate from runtime feedback.

        The base estimator is purely statistics-driven, so this is the
        identity.  :class:`repro.adaptive.corrections.CorrectedCardinalityEstimator`
        overrides it to blend the node's estimate with observed actuals for
        plan shapes that have executed before; the optimizer and the join
        orderers call it on every scan, filter and join node they build, so
        corrected cardinalities flow into the cost decisions without the
        ordering algorithms changing.
        """
        return node

    # -- single patterns --------------------------------------------------------

    def pattern_cardinality(self, pattern: TriplePattern) -> float:
        """Exact matching-triple count for the constant positions of a pattern."""
        return float(self.statistics.pattern_cardinality(pattern))

    def variable_counts(self, pattern: TriplePattern, cardinality: Optional[float] = None) -> Dict[Variable, float]:
        """Estimated distinct-value count per variable of a single pattern.

        A variable occurring in several positions (``?x :p ?x``) is an
        equality constraint: its value must be drawn from the *intersection*
        of the per-position value sets, so the estimate is the minimum of
        the per-position estimates (a later position must never blindly
        overwrite an earlier, tighter one).
        """
        if cardinality is None:
            cardinality = self.pattern_cardinality(pattern)
        counts: Dict[Variable, float] = {}
        predicate = pattern.predicate
        predicate_id = None
        if not isinstance(predicate, Variable):
            predicate_id = self.statistics.store.encode_term(predicate)

        for position, term in zip(("subject", "predicate", "object"), pattern):
            if not isinstance(term, Variable):
                continue
            estimate = cardinality
            if predicate_id is not None:
                stats = self.statistics.predicate(predicate_id)
                if stats is not None:
                    if position == "subject":
                        estimate = stats.distinct_subjects
                    elif position == "object":
                        estimate = stats.distinct_objects
            if position == "predicate":
                estimate = self.statistics.store.distinct_predicates()
            # Never claim more distinct values than rows.
            bounded = max(1.0, min(float(estimate), float(cardinality))) if cardinality else 0.0
            if term in counts:
                # Repeated variable: keep the tightest per-position estimate.
                counts[term] = min(counts[term], bounded)
            else:
                counts[term] = bounded
        return counts

    # -- joins -------------------------------------------------------------------

    def join_cardinality(
        self,
        left_cardinality: float,
        right_cardinality: float,
        left_counts: Dict[Variable, float],
        right_counts: Dict[Variable, float],
    ) -> Tuple[float, Dict[Variable, float]]:
        """Estimate the cardinality and variable counts of an equi-join.

        Shared variables contribute a selectivity of ``1 / max(d_l, d_r)``
        each (containment of values); the resulting distinct count for a
        shared variable is the smaller of the two sides.  Disjoint variable
        sets degenerate to a cross product.
        """
        shared = [variable for variable in left_counts if variable in right_counts]
        cardinality = left_cardinality * right_cardinality
        for variable in shared:
            denominator = max(left_counts[variable], right_counts[variable], 1.0)
            cardinality /= denominator

        result_counts: Dict[Variable, float] = {}
        for variable, count in left_counts.items():
            result_counts[variable] = count
        for variable, count in right_counts.items():
            if variable in result_counts:
                result_counts[variable] = min(result_counts[variable], count)
            else:
                result_counts[variable] = count
        # Distinct counts can never exceed the result cardinality.
        bounded = {variable: max(1.0, min(count, cardinality)) if cardinality > 0 else 0.0
                   for variable, count in result_counts.items()}
        return cardinality, bounded

    # -- filters -------------------------------------------------------------------

    def filter_selectivity(self, expression: Expression) -> float:
        """Heuristic selectivity of a filter expression."""
        if isinstance(expression, BinaryExpression):
            if expression.operator == "&&":
                return self.filter_selectivity(expression.left) * self.filter_selectivity(expression.right)
            if expression.operator == "||":
                left = self.filter_selectivity(expression.left)
                right = self.filter_selectivity(expression.right)
                return min(1.0, left + right - left * right)
            if expression.operator in DEFAULT_SELECTIVITY:
                return DEFAULT_SELECTIVITY[expression.operator]
            return DEFAULT_SELECTIVITY["other"]
        if isinstance(expression, UnaryExpression) and expression.operator == "!":
            return max(0.0, 1.0 - self.filter_selectivity(expression.operand))
        if isinstance(expression, FunctionCall):
            if expression.name == "REGEX":
                return DEFAULT_SELECTIVITY["regex"]
            if expression.name == "BOUND":
                return DEFAULT_SELECTIVITY["bound"]
            return DEFAULT_SELECTIVITY["other"]
        if isinstance(expression, TermExpression):
            return 1.0
        return DEFAULT_SELECTIVITY["other"]


def shared_variables(
    left_variables: Iterable[Variable], right_variables: Iterable[Variable]
) -> Tuple[Variable, ...]:
    """Ordered intersection of two variable collections."""
    right_set = set(right_variables)
    return tuple(variable for variable in left_variables if variable in right_set)
