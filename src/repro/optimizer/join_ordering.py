"""Join ordering.

Two algorithms are provided:

* :class:`DynamicProgrammingOrderer` — exact bushy-plan enumeration over
  connected subsets (DPsub), minimising estimated ``Cout``.  This is the
  "solve the NP-hard join ordering problem" step the paper's Section III
  refers to; it is feasible because benchmark templates have a handful of
  patterns.
* :class:`GreedyOrderer` — the classic "smallest intermediate result next"
  heuristic, used as an ablation baseline and as a fallback for very large
  BGPs.

Both attach filters eagerly: a filter expression is applied at the lowest
plan node that binds all of its variables, and its selectivity feeds back
into the cardinality estimates so that selective filters make the
containing subtree cheap — this is what lets parameter values flip the
optimal join order (the paper's E4).
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..rdf.terms import Variable
from ..rdf.triples import TriplePattern
from ..sparql.ast import Expression
from .cardinality import CardinalityEstimator, shared_variables
from .plans import FilterNode, JoinNode, PlanNode, ScanNode


class JoinOrderingError(ValueError):
    """Raised when a BGP cannot be ordered (e.g. empty pattern list)."""


def _build_scan(
    pattern: TriplePattern, index: int, estimator: CardinalityEstimator
) -> ScanNode:
    cardinality = estimator.pattern_cardinality(pattern)
    scan = ScanNode(pattern, index, cardinality)
    scan.variable_counts = estimator.variable_counts(pattern, cardinality)
    return estimator.correct_node(scan)


def _apply_ready_filters(
    node: PlanNode,
    filters: Sequence[Expression],
    applied: set,
    estimator: CardinalityEstimator,
) -> PlanNode:
    """Wrap ``node`` in FilterNodes for every not-yet-applied ready filter."""
    bound = set(node.output_variables())
    for position, expression in enumerate(filters):
        if position in applied:
            continue
        required = set(expression.variables())
        if required and required <= bound:
            selectivity = estimator.filter_selectivity(expression)
            cardinality = node.estimated_cardinality * selectivity
            filtered = FilterNode(expression, node, cardinality)
            filtered.variable_counts = {
                variable: max(1.0, min(count, cardinality)) if cardinality > 0 else 0.0
                for variable, count in node.variable_counts.items()
            }
            node = estimator.correct_node(filtered)
            applied.add(position)
    return node


def lookup_target(node: PlanNode) -> Optional[ScanNode]:
    """Return the ScanNode at the bottom of a Filter chain, if any.

    Such a right-hand side can be evaluated as an index nested-loop join
    (probe the permutation indexes once per left row) instead of scanning
    the whole pattern and hashing it.
    """
    while isinstance(node, FilterNode):
        node = node.child
    return node if isinstance(node, ScanNode) else None


def _join(
    left: PlanNode,
    right: PlanNode,
    estimator: CardinalityEstimator,
    filters: Sequence[Expression],
    applied: set,
) -> PlanNode:
    join_variables = shared_variables(left.output_variables(), right.output_variables())
    cardinality, counts = estimator.join_cardinality(
        left.estimated_cardinality,
        right.estimated_cardinality,
        left.variable_counts,
        right.variable_counts,
    )
    if not join_variables:
        method = JoinNode.NESTED_LOOP
    elif lookup_target(right) is not None:
        method = JoinNode.LOOKUP
    elif lookup_target(left) is not None:
        # Joins are commutative and Cout is side-agnostic: put the scan on
        # the right so it can be probed through the index.
        left, right = right, left
        method = JoinNode.LOOKUP
    else:
        method = JoinNode.HASH
    join = JoinNode(left, right, join_variables, cardinality, method)
    join.variable_counts = counts
    join = estimator.correct_node(join)
    return _apply_ready_filters(join, filters, applied, estimator)


def _patterns_connected(
    left_variables: Tuple[Variable, ...], right_variables: Tuple[Variable, ...]
) -> bool:
    return bool(set(left_variables) & set(right_variables))


class GreedyOrderer:
    """Greedy smallest-intermediate-result join ordering."""

    name = "greedy"

    def __init__(self, estimator: CardinalityEstimator):
        self.estimator = estimator

    def order(
        self, patterns: Sequence[TriplePattern], filters: Sequence[Expression] = ()
    ) -> PlanNode:
        if not patterns:
            raise JoinOrderingError("cannot order an empty basic graph pattern")
        applied: set = set()
        nodes: List[PlanNode] = []
        for index, pattern in enumerate(patterns):
            scan = _build_scan(pattern, index, self.estimator)
            nodes.append(_apply_ready_filters(scan, filters, applied, self.estimator))

        if len(nodes) == 1:
            return nodes[0]

        # Start from the most selective (smallest) input.
        nodes.sort(key=lambda node: (node.estimated_cardinality, node.signature()))
        current = nodes.pop(0)
        while nodes:
            best_index: Optional[int] = None
            best_plan: Optional[PlanNode] = None
            best_key: Optional[Tuple[float, int, str]] = None
            for index, candidate in enumerate(nodes):
                connected = _patterns_connected(current.output_variables(), candidate.output_variables())
                plan = _join(current, candidate, self.estimator, filters, set(applied))
                # Prefer connected joins; among them the smallest output.
                key = (plan.estimated_cardinality, 0 if connected else 1, plan.signature())
                if best_key is None or (key[1], key[0], key[2]) < (best_key[1], best_key[0], best_key[2]):
                    best_key = key
                    best_index = index
                    best_plan = plan
            assert best_index is not None and best_plan is not None
            # Recompute with the shared ``applied`` set so filters are
            # marked as consumed exactly once.
            candidate = nodes.pop(best_index)
            current = _join(current, candidate, self.estimator, filters, applied)
        return current


class DynamicProgrammingOrderer:
    """Exact DPsub enumeration minimising estimated Cout.

    Cross products are avoided while any connected join is possible, which
    mirrors standard optimizer behaviour; disconnected BGPs still get a plan
    (the cheapest cross product is taken at the end).
    """

    name = "dp"

    def __init__(self, estimator: CardinalityEstimator, max_patterns: int = 12):
        self.estimator = estimator
        self.max_patterns = max_patterns

    def order(
        self, patterns: Sequence[TriplePattern], filters: Sequence[Expression] = ()
    ) -> PlanNode:
        if not patterns:
            raise JoinOrderingError("cannot order an empty basic graph pattern")
        if len(patterns) > self.max_patterns:
            return GreedyOrderer(self.estimator).order(patterns, filters)

        # Each DP entry keeps its own "applied filters" set because which
        # filters have fired depends on which patterns are in the subset.
        best: Dict[FrozenSet[int], Tuple[float, PlanNode, frozenset]] = {}
        for index, pattern in enumerate(patterns):
            applied: set = set()
            scan = _build_scan(pattern, index, self.estimator)
            node = _apply_ready_filters(scan, filters, applied, self.estimator)
            best[frozenset([index])] = (node.estimated_cout(), node, frozenset(applied))

        pattern_count = len(patterns)
        all_indexes = list(range(pattern_count))
        for size in range(2, pattern_count + 1):
            for subset in combinations(all_indexes, size):
                subset_key = frozenset(subset)
                best_entry: Optional[Tuple[float, PlanNode, frozenset]] = None
                found_connected = False
                # Enumerate proper, non-empty splits of the subset.
                subset_list = sorted(subset_key)
                for split_size in range(1, size):
                    for left_part in combinations(subset_list, split_size):
                        left_key = frozenset(left_part)
                        right_key = subset_key - left_key
                        if left_key not in best or right_key not in best:
                            continue
                        # Avoid symmetric duplicates by requiring the smallest
                        # element to stay on the left.
                        if min(left_key) != min(subset_key):
                            continue
                        _left_cost, left_plan, left_applied = best[left_key]
                        _right_cost, right_plan, right_applied = best[right_key]
                        connected = _patterns_connected(
                            left_plan.output_variables(), right_plan.output_variables()
                        )
                        applied = set(left_applied | right_applied)
                        plan = _join(left_plan, right_plan, self.estimator, filters, applied)
                        cost = plan.estimated_cout()
                        candidate = (cost, plan, frozenset(applied))
                        if connected and not found_connected:
                            # First connected plan always beats any cross product.
                            found_connected = True
                            best_entry = candidate
                        elif connected == found_connected:
                            if best_entry is None or (cost, plan.signature()) < (
                                best_entry[0],
                                best_entry[1].signature(),
                            ):
                                best_entry = candidate
                        # else: candidate is a cross product but we already
                        # have a connected plan -> ignore it.
                if best_entry is not None:
                    best[subset_key] = best_entry

        full_key = frozenset(all_indexes)
        if full_key not in best:
            raise JoinOrderingError("dynamic programming failed to cover all patterns")
        return best[full_key][1]


def make_orderer(name: str, estimator: CardinalityEstimator):
    """Factory used by the optimizer and the ablation benchmarks."""
    if name == "dp":
        return DynamicProgrammingOrderer(estimator)
    if name == "greedy":
        return GreedyOrderer(estimator)
    raise ValueError("unknown join ordering algorithm %r" % name)
