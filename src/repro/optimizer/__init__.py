"""Cout-based query optimizer: plans, cardinality estimation, join ordering."""

from .cardinality import CardinalityEstimator, DEFAULT_SELECTIVITY, shared_variables
from .cost import OPERATOR_COSTS, actual_cout, describe_cost_model, estimated_cout, operator_cost
from .join_ordering import (
    DynamicProgrammingOrderer,
    GreedyOrderer,
    JoinOrderingError,
    make_orderer,
)
from .optimizer import Optimizer
from .plans import (
    AggregateNode,
    DistinctNode,
    ExtendNode,
    FilterNode,
    JoinNode,
    LeftJoinNode,
    LimitNode,
    PlanNode,
    ProjectNode,
    ScanNode,
    SingletonNode,
    SortNode,
    UnionNode,
    collect_nodes,
    join_tree_signature,
)

__all__ = [
    "AggregateNode",
    "CardinalityEstimator",
    "DEFAULT_SELECTIVITY",
    "DistinctNode",
    "DynamicProgrammingOrderer",
    "ExtendNode",
    "FilterNode",
    "GreedyOrderer",
    "JoinNode",
    "JoinOrderingError",
    "LeftJoinNode",
    "LimitNode",
    "OPERATOR_COSTS",
    "Optimizer",
    "PlanNode",
    "ProjectNode",
    "ScanNode",
    "SingletonNode",
    "SortNode",
    "UnionNode",
    "actual_cout",
    "collect_nodes",
    "describe_cost_model",
    "estimated_cout",
    "join_tree_signature",
    "make_orderer",
    "operator_cost",
    "shared_variables",
]
