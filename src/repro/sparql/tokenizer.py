"""Tokenizer for the SPARQL subset used by the benchmark query templates.

The token stream distinguishes IRIs, qualified names, variables, literals
(numeric / string with language tag or datatype), punctuation, keywords and
— specific to this library — *template parameters* written ``%name`` as in
the paper's example query.
"""

from __future__ import annotations

import re
from typing import Iterator, List, NamedTuple


class Token(NamedTuple):
    kind: str
    value: str
    position: int


class TokenizeError(ValueError):
    """Raised on input that cannot be tokenized."""


#: Keywords recognised case-insensitively; stored upper-case in tokens.
KEYWORDS = frozenset(
    [
        "PREFIX",
        "SELECT",
        "DISTINCT",
        "WHERE",
        "FILTER",
        "OPTIONAL",
        "UNION",
        "GROUP",
        "BY",
        "HAVING",
        "ORDER",
        "ASC",
        "DESC",
        "LIMIT",
        "OFFSET",
        "AS",
        "BIND",
        "INSERT",
        "DELETE",
        "DATA",
        "COUNT",
        "SUM",
        "AVG",
        "MIN",
        "MAX",
        "BOUND",
        "REGEX",
        "STR",
        "LANG",
        "DATATYPE",
        "NOT",
        "EXISTS",
        "IN",
        "TRUE",
        "FALSE",
        "A",
    ]
)

_TOKEN_SPECIFICATION = [
    ("WHITESPACE", r"[ \t\r\n]+"),
    ("COMMENT", r"#[^\n]*"),
    ("IRI", r"<[^<>\"{}|^`\\ ]*>"),
    ("DOUBLE", r"[+-]?\d+\.\d*(?:[eE][+-]?\d+)?|[+-]?\.\d+(?:[eE][+-]?\d+)?"),
    ("INTEGER", r"[+-]?\d+"),
    ("STRING", r'"(?:[^"\\]|\\.)*"'),
    ("VAR", r"[?$][A-Za-z_][A-Za-z0-9_]*"),
    ("PARAM", r"%[A-Za-z_][A-Za-z0-9_]*%?"),
    ("LANGTAG", r"@[A-Za-z]+(?:-[A-Za-z0-9]+)*"),
    ("DOUBLE_CARET", r"\^\^"),
    ("QNAME", r"[A-Za-z_][A-Za-z0-9_\-]*:[A-Za-z_][A-Za-z0-9_\-]*(?:\.[A-Za-z0-9_\-]+)*"),
    ("PNAME_NS", r"[A-Za-z_][A-Za-z0-9_\-]*:"),
    ("NAME", r"[A-Za-z_][A-Za-z0-9_\-]*"),
    ("NEQ", r"!="),
    ("LE", r"<="),
    ("GE", r">="),
    ("AND", r"&&"),
    ("OR", r"\|\|"),
    ("LPAREN", r"\("),
    ("RPAREN", r"\)"),
    ("LBRACE", r"\{"),
    ("RBRACE", r"\}"),
    ("DOT", r"\."),
    ("SEMICOLON", r";"),
    ("COMMA", r","),
    ("EQ", r"="),
    ("LT", r"<"),
    ("GT", r">"),
    ("PLUS", r"\+"),
    ("MINUS", r"-"),
    ("STAR", r"\*"),
    ("SLASH", r"/"),
    ("BANG", r"!"),
]

_MASTER_PATTERN = re.compile("|".join("(?P<%s>%s)" % (name, pattern) for name, pattern in _TOKEN_SPECIFICATION))


def tokenize(text: str) -> List[Token]:
    """Tokenize a query string, dropping whitespace and comments."""
    tokens: List[Token] = []
    position = 0
    length = len(text)
    while position < length:
        match = _MASTER_PATTERN.match(text, position)
        if match is None:
            raise TokenizeError("unexpected character %r at position %d" % (text[position], position))
        kind = match.lastgroup or ""
        value = match.group()
        if kind not in ("WHITESPACE", "COMMENT"):
            if kind == "NAME" and value.upper() in KEYWORDS:
                tokens.append(Token("KEYWORD", value.upper(), position))
            elif kind == "PARAM":
                tokens.append(Token("PARAM", value.strip("%"), position))
            else:
                tokens.append(Token(kind, value, position))
        position = match.end()
    tokens.append(Token("EOF", "", length))
    return tokens


def iter_parameter_names(text: str) -> Iterator[str]:
    """Yield the distinct ``%param`` names of a template in occurrence order."""
    seen = set()
    for token in tokenize(text):
        if token.kind == "PARAM" and token.value not in seen:
            seen.add(token.value)
            yield token.value
