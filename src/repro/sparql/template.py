"""Query templates with ``%name`` substitution parameters.

A benchmark workload is defined by *query templates*: query text in which
some terms are parameters (the paper's example uses ``%name`` and
``%country``).  :class:`QueryTemplate` parses the text once and can then be
instantiated many times with different parameter bindings, producing fully
concrete :class:`~repro.sparql.ast.SelectQuery` objects.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

from ..rdf.terms import Term
from ..rdf.triples import TriplePattern
from .ast import (
    AggregateExpression,
    BinaryExpression,
    Expression,
    FunctionCall,
    GroupGraphPattern,
    OrderCondition,
    ParameterExpression,
    ParameterTerm,
    Projection,
    SelectQuery,
    TermExpression,
    UnaryExpression,
)
from .parser import parse_query


class MissingParameterError(KeyError):
    """Raised when a template is instantiated without all its parameters."""


class UnknownParameterError(KeyError):
    """Raised when a binding names a parameter the template does not have."""


# -- substitution helpers -----------------------------------------------------------


def _substitute_term(term: Term, bindings: Mapping[str, Term]) -> Term:
    if isinstance(term, ParameterTerm):
        try:
            return bindings[term.name]
        except KeyError:
            raise MissingParameterError(term.name) from None
    return term


def _substitute_expression(expression: Expression, bindings: Mapping[str, Term]) -> Expression:
    if isinstance(expression, ParameterExpression):
        try:
            return TermExpression(bindings[expression.name])
        except KeyError:
            raise MissingParameterError(expression.name) from None
    if isinstance(expression, TermExpression):
        return expression
    if isinstance(expression, UnaryExpression):
        return UnaryExpression(expression.operator, _substitute_expression(expression.operand, bindings))
    if isinstance(expression, BinaryExpression):
        return BinaryExpression(
            expression.operator,
            _substitute_expression(expression.left, bindings),
            _substitute_expression(expression.right, bindings),
        )
    if isinstance(expression, FunctionCall):
        return FunctionCall(
            expression.name,
            [_substitute_expression(argument, bindings) for argument in expression.arguments],
        )
    if isinstance(expression, AggregateExpression):
        argument = (
            _substitute_expression(expression.argument, bindings)
            if expression.argument is not None
            else None
        )
        return AggregateExpression(expression.function, argument, expression.distinct)
    raise TypeError("unsupported expression node %r" % (expression,))


def _substitute_group(group: GroupGraphPattern, bindings: Mapping[str, Term]) -> GroupGraphPattern:
    return GroupGraphPattern(
        patterns=[
            TriplePattern(
                _substitute_term(pattern.subject, bindings),
                _substitute_term(pattern.predicate, bindings),
                _substitute_term(pattern.object, bindings),
            )
            for pattern in group.patterns
        ],
        filters=[_substitute_expression(expression, bindings) for expression in group.filters],
        optionals=[_substitute_group(optional, bindings) for optional in group.optionals],
        unions=[
            [_substitute_group(alternative, bindings) for alternative in alternatives]
            for alternatives in group.unions
        ],
        binds=[
            (variable, _substitute_expression(expression, bindings))
            for variable, expression in group.binds
        ],
    )


def substitute_parameters(query: SelectQuery, bindings: Mapping[str, Term]) -> SelectQuery:
    """Return a copy of ``query`` with every parameter replaced by a term."""
    projections = query.projections
    if not query.is_select_all():
        projections = [
            Projection(
                projection.variable,
                _substitute_expression(projection.expression, bindings)
                if projection.expression is not None
                else None,
            )
            for projection in query.projections
        ]
    return SelectQuery(
        projections=projections,
        where=_substitute_group(query.where, bindings),
        distinct=query.distinct,
        group_by=list(query.group_by),
        having=[_substitute_expression(expression, bindings) for expression in query.having],
        order_by=[
            OrderCondition(_substitute_expression(condition.expression, bindings), condition.descending)
            for condition in query.order_by
        ],
        limit=query.limit,
        offset=query.offset,
        prefixes=dict(query.prefixes),
    )


#: Public aliases used by the prepared-statement layer, which substitutes
#: parameters directly into translated algebra trees instead of the AST.
substitute_term = _substitute_term
substitute_expression = _substitute_expression


# -- the template class ----------------------------------------------------------------


class QueryTemplate:
    """A named, parameterised query template.

    Parameters
    ----------
    name:
        Identifier used in workload definitions and reports (e.g.
        ``"bsbm_bi_q4"``).
    text:
        The query text with ``%param`` placeholders.
    description:
        Optional human-readable summary (shown in reports).
    """

    def __init__(self, name: str, text: str, description: str = ""):
        self.name = name
        self.text = text
        self.description = description
        self.query = parse_query(text)
        self.parameter_names: Tuple[str, ...] = self.query.parameters()

    def instantiate(self, bindings: Mapping[str, Term]) -> SelectQuery:
        """Instantiate the template with concrete terms for every parameter."""
        unknown = set(bindings) - set(self.parameter_names)
        if unknown:
            raise UnknownParameterError(
                "unknown parameters %s for template %s" % (sorted(unknown), self.name)
            )
        missing = set(self.parameter_names) - set(bindings)
        if missing:
            raise MissingParameterError(
                "missing parameters %s for template %s" % (sorted(missing), self.name)
            )
        return substitute_parameters(self.query, bindings)

    def __repr__(self) -> str:
        return "QueryTemplate(%r, parameters=%r)" % (self.name, list(self.parameter_names))


class TemplateRegistry:
    """A named collection of query templates (one per benchmark workload)."""

    def __init__(self, name: str):
        self.name = name
        self._templates: Dict[str, QueryTemplate] = {}

    def register(self, template: QueryTemplate) -> QueryTemplate:
        if template.name in self._templates:
            raise ValueError("duplicate template name %r" % template.name)
        self._templates[template.name] = template
        return template

    def add(self, name: str, text: str, description: str = "") -> QueryTemplate:
        return self.register(QueryTemplate(name, text, description))

    def get(self, name: str) -> QueryTemplate:
        if name not in self._templates:
            raise KeyError("unknown template %r in registry %r" % (name, self.name))
        return self._templates[name]

    def names(self) -> List[str]:
        return sorted(self._templates)

    def templates(self) -> List[QueryTemplate]:
        return [self._templates[name] for name in self.names()]

    def __contains__(self, name: str) -> bool:
        return name in self._templates

    def __len__(self) -> int:
        return len(self._templates)

    def __repr__(self) -> str:
        return "TemplateRegistry(%r, %d templates)" % (self.name, len(self))
