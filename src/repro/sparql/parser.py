"""Recursive-descent parser for the SPARQL subset.

Supported grammar (sufficient for the BSBM-BI and LDBC-style templates used
throughout the paper, plus the usual analytic extras):

* ``PREFIX`` declarations,
* ``SELECT [DISTINCT] * | ?v ... | (expr AS ?v) ...``,
* ``WHERE { ... }`` with triple patterns (``;`` and ``,`` abbreviations and
  the ``a`` keyword), ``FILTER``, ``OPTIONAL``, ``UNION`` and
  ``BIND(expr AS ?v)`` blocks,
* ``GROUP BY``, ``HAVING``, ``ORDER BY [ASC|DESC]``, ``LIMIT``, ``OFFSET``,
* ``%name`` template parameters anywhere a term may appear.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..rdf.namespaces import DEFAULT_PREFIXES, XSD
from ..rdf.terms import IRI, Literal, Term, Variable
from ..rdf.triples import TriplePattern
from .ast import (
    AggregateExpression,
    BinaryExpression,
    DeleteDataOp,
    DeleteWhereOp,
    Expression,
    FunctionCall,
    GroupGraphPattern,
    InsertDataOp,
    OrderCondition,
    ParameterExpression,
    ParameterTerm,
    Projection,
    SelectQuery,
    TermExpression,
    UnaryExpression,
    UpdateOperation,
    UpdateRequest,
)
from .tokenizer import Token, tokenize


class ParseError(ValueError):
    """Raised when the query text does not conform to the grammar."""


class Parser:
    """One-shot parser over a token list."""

    def __init__(self, text: str):
        self.text = text
        self.tokens: List[Token] = tokenize(text)
        self.position = 0
        self.prefixes = dict(DEFAULT_PREFIXES)

    # -- token helpers -------------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        index = min(self.position + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.tokens[self.position]
        if token.kind != "EOF":
            self.position += 1
        return token

    def error(self, message: str) -> ParseError:
        token = self.peek()
        return ParseError("%s (got %s %r at position %d)" % (message, token.kind, token.value, token.position))

    def accept(self, kind: str, value: Optional[str] = None) -> Optional[Token]:
        token = self.peek()
        if token.kind == kind and (value is None or token.value == value):
            return self.advance()
        return None

    def expect(self, kind: str, value: Optional[str] = None) -> Token:
        token = self.accept(kind, value)
        if token is None:
            expected = value if value is not None else kind
            raise self.error("expected %s" % expected)
        return token

    def accept_keyword(self, *keywords: str) -> Optional[Token]:
        token = self.peek()
        if token.kind == "KEYWORD" and token.value in keywords:
            return self.advance()
        return None

    def expect_keyword(self, keyword: str) -> Token:
        token = self.accept_keyword(keyword)
        if token is None:
            raise self.error("expected keyword %s" % keyword)
        return token

    # -- entry point ------------------------------------------------------------

    def parse_query(self) -> SelectQuery:
        self._parse_prologue()
        query = self._parse_select()
        if self.peek().kind != "EOF":
            raise self.error("unexpected trailing input")
        return query

    def parse_update(self) -> UpdateRequest:
        """Parse a SPARQL 1.1 Update request (the subset this engine ships).

        Grammar::

            Prologue ( Operation ( ';' Operation )* ';'? )?
            Operation := 'INSERT' 'DATA' QuadData
                       | 'DELETE' 'DATA' QuadData
                       | 'DELETE' 'WHERE' QuadPattern

        An empty request (prologue only) is valid per the W3C grammar and
        yields zero operations.
        """
        self._parse_prologue()
        operations: List[UpdateOperation] = []
        while self.peek().kind != "EOF":
            self._parse_prologue()
            if self.peek().kind == "EOF":
                break
            operations.append(self._parse_update_operation())
            if self.accept("SEMICOLON") is None:
                break
        if self.peek().kind != "EOF":
            raise self.error("unexpected trailing input")
        return UpdateRequest(operations, prefixes=dict(self.prefixes))

    def _parse_update_operation(self) -> UpdateOperation:
        if self.accept_keyword("INSERT"):
            self.expect_keyword("DATA")
            return InsertDataOp(self._parse_quad_data("INSERT DATA"))
        if self.accept_keyword("DELETE"):
            if self.accept_keyword("DATA"):
                return DeleteDataOp(self._parse_quad_data("DELETE DATA"))
            self.expect_keyword("WHERE")
            return DeleteWhereOp(self._parse_quad_pattern())
        raise self.error("expected INSERT DATA, DELETE DATA or DELETE WHERE")

    def _parse_quad_data(self, operation: str) -> List[TriplePattern]:
        """A ``{ ... }`` block of ground triples (variables are forbidden)."""
        group = self._parse_quad_pattern()
        for pattern in group.patterns:
            for term in pattern:
                if isinstance(term, Variable):
                    raise ParseError(
                        "%s forbids variables, got %s" % (operation, term.name)
                    )
                if isinstance(term, ParameterTerm):
                    raise ParseError(
                        "%s forbids template parameters, got %%%s"
                        % (operation, term.name)
                    )
        return group.patterns

    def _parse_quad_pattern(self) -> GroupGraphPattern:
        """A ``{ ... }`` block restricted to triples (SPARQL QuadPattern)."""
        group = self._parse_group_graph_pattern()
        if group.filters or group.optionals or group.unions or group.binds:
            raise ParseError(
                "update operations take a plain triple block - "
                "FILTER/OPTIONAL/UNION/BIND are not allowed here"
            )
        return group

    # -- prologue ---------------------------------------------------------------

    def _parse_prologue(self) -> None:
        while self.accept_keyword("PREFIX"):
            token = self.peek()
            if token.kind == "PNAME_NS":
                prefix = self.advance().value.rstrip(":")
            elif token.kind == "NAME":
                prefix = self.advance().value
            else:
                raise self.error("expected prefix name")
            iri_token = self.expect("IRI")
            self.prefixes[prefix] = iri_token.value[1:-1]

    # -- select -------------------------------------------------------------------

    def _parse_select(self) -> SelectQuery:
        self.expect_keyword("SELECT")
        distinct = self.accept_keyword("DISTINCT") is not None
        projections = self._parse_projections()
        if self.accept_keyword("WHERE") is None:
            # WHERE keyword is optional in SPARQL
            pass
        where = self._parse_group_graph_pattern()
        group_by: List[Variable] = []
        having: List[Expression] = []
        order_by: List[OrderCondition] = []
        limit: Optional[int] = None
        offset: Optional[int] = None

        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            while self.peek().kind == "VAR":
                group_by.append(Variable(self.advance().value))
            if not group_by:
                raise self.error("GROUP BY requires at least one variable")
        if self.accept_keyword("HAVING"):
            having.append(self._parse_bracketted_expression())
            while self.peek().kind == "LPAREN":
                having.append(self._parse_bracketted_expression())
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            order_by = self._parse_order_conditions()
        if self.accept_keyword("LIMIT"):
            limit = int(self.expect("INTEGER").value)
        if self.accept_keyword("OFFSET"):
            offset = int(self.expect("INTEGER").value)
        # LIMIT may also precede OFFSET in either order
        if limit is None and self.accept_keyword("LIMIT"):
            limit = int(self.expect("INTEGER").value)

        return SelectQuery(
            projections=projections,
            where=where,
            distinct=distinct,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=limit,
            offset=offset,
            prefixes=dict(self.prefixes),
        )

    def _parse_projections(self):
        if self.accept("STAR"):
            return "*"
        projections: List[Projection] = []
        while True:
            token = self.peek()
            if token.kind == "VAR":
                projections.append(Projection(Variable(self.advance().value)))
            elif token.kind == "LPAREN":
                self.advance()
                expression = self._parse_expression()
                self.expect_keyword("AS")
                variable = Variable(self.expect("VAR").value)
                self.expect("RPAREN")
                projections.append(Projection(variable, expression))
            else:
                break
        if not projections:
            raise self.error("SELECT requires * or at least one variable")
        return projections

    def _parse_order_conditions(self) -> List[OrderCondition]:
        conditions: List[OrderCondition] = []
        while True:
            token = self.peek()
            if token.kind == "KEYWORD" and token.value in ("ASC", "DESC"):
                descending = self.advance().value == "DESC"
                expression = self._parse_bracketted_expression()
                conditions.append(OrderCondition(expression, descending))
            elif token.kind == "VAR":
                conditions.append(OrderCondition(TermExpression(Variable(self.advance().value))))
            elif token.kind == "LPAREN":
                conditions.append(OrderCondition(self._parse_bracketted_expression()))
            else:
                break
        if not conditions:
            raise self.error("ORDER BY requires at least one condition")
        return conditions

    def _parse_bracketted_expression(self) -> Expression:
        self.expect("LPAREN")
        expression = self._parse_expression()
        self.expect("RPAREN")
        return expression

    # -- group graph pattern ---------------------------------------------------------

    def _parse_group_graph_pattern(self) -> GroupGraphPattern:
        self.expect("LBRACE")
        group = GroupGraphPattern()
        while True:
            token = self.peek()
            if token.kind == "RBRACE":
                self.advance()
                break
            if token.kind == "EOF":
                raise self.error("unterminated group graph pattern")
            if token.kind == "KEYWORD" and token.value == "FILTER":
                self.advance()
                group.filters.append(self._parse_bracketted_expression())
                self.accept("DOT")
                continue
            if token.kind == "KEYWORD" and token.value == "OPTIONAL":
                self.advance()
                group.optionals.append(self._parse_group_graph_pattern())
                self.accept("DOT")
                continue
            if token.kind == "KEYWORD" and token.value == "BIND":
                self.advance()
                self.expect("LPAREN")
                expression = self._parse_expression()
                if not self.accept_keyword("AS"):
                    raise self.error("BIND requires 'AS ?variable'")
                variable_token = self.expect("VAR")
                self.expect("RPAREN")
                group.binds.append((Variable(variable_token.value), expression))
                self.accept("DOT")
                continue
            if token.kind == "LBRACE":
                alternatives = [self._parse_group_graph_pattern()]
                while self.accept_keyword("UNION"):
                    alternatives.append(self._parse_group_graph_pattern())
                if len(alternatives) == 1:
                    # A plain nested group: merge it into the current group.
                    nested = alternatives[0]
                    group.patterns.extend(nested.patterns)
                    group.filters.extend(nested.filters)
                    group.optionals.extend(nested.optionals)
                    group.unions.extend(nested.unions)
                    group.binds.extend(nested.binds)
                else:
                    group.unions.append(alternatives)
                self.accept("DOT")
                continue
            self._parse_triples_block(group)
        return group

    def _parse_triples_block(self, group: GroupGraphPattern) -> None:
        subject = self._parse_term(allow_literal=False)
        while True:
            predicate = self._parse_verb()
            while True:
                object_ = self._parse_term(allow_literal=True)
                group.patterns.append(TriplePattern(subject, predicate, object_))
                if self.accept("COMMA"):
                    continue
                break
            if self.accept("SEMICOLON"):
                if self.peek().kind in ("DOT", "RBRACE"):
                    break
                continue
            break
        self.accept("DOT")

    def _parse_verb(self) -> Term:
        if self.accept_keyword("A"):
            return IRI(DEFAULT_PREFIXES["rdf"] + "type")
        return self._parse_term(allow_literal=False)

    def _parse_term(self, allow_literal: bool) -> Term:
        token = self.peek()
        if token.kind == "VAR":
            return Variable(self.advance().value)
        if token.kind == "PARAM":
            return ParameterTerm(self.advance().value)
        if token.kind == "IRI":
            return IRI(self.advance().value[1:-1])
        if token.kind == "QNAME":
            return self._expand_qname(self.advance().value)
        if token.kind in ("INTEGER", "DOUBLE", "STRING") or (
            token.kind == "KEYWORD" and token.value in ("TRUE", "FALSE")
        ):
            if not allow_literal:
                raise self.error("literal not allowed here")
            return self._parse_literal()
        raise self.error("expected an RDF term")

    def _expand_qname(self, qname: str) -> IRI:
        prefix, local = qname.split(":", 1)
        if prefix not in self.prefixes:
            raise ParseError("unknown prefix %r in %r" % (prefix, qname))
        return IRI(self.prefixes[prefix] + local)

    def _parse_literal(self) -> Literal:
        token = self.advance()
        if token.kind == "INTEGER":
            return Literal(token.value, datatype=XSD["integer"])
        if token.kind == "DOUBLE":
            return Literal(token.value, datatype=XSD["double"])
        if token.kind == "KEYWORD" and token.value in ("TRUE", "FALSE"):
            return Literal(token.value.lower(), datatype=XSD["boolean"])
        if token.kind == "STRING":
            lexical = _unescape_string(token.value[1:-1])
            next_token = self.peek()
            if next_token.kind == "LANGTAG":
                self.advance()
                return Literal(lexical, language=next_token.value[1:])
            if next_token.kind == "DOUBLE_CARET":
                self.advance()
                datatype_token = self.peek()
                if datatype_token.kind == "IRI":
                    self.advance()
                    return Literal(lexical, datatype=IRI(datatype_token.value[1:-1]))
                if datatype_token.kind == "QNAME":
                    self.advance()
                    return Literal(lexical, datatype=self._expand_qname(datatype_token.value))
                raise self.error("expected datatype IRI after ^^")
            return Literal(lexical)
        raise self.error("expected a literal")

    # -- expressions -------------------------------------------------------------------

    def _parse_expression(self) -> Expression:
        return self._parse_or()

    def _parse_or(self) -> Expression:
        left = self._parse_and()
        while self.accept("OR"):
            left = BinaryExpression("||", left, self._parse_and())
        return left

    def _parse_and(self) -> Expression:
        left = self._parse_relational()
        while self.accept("AND"):
            left = BinaryExpression("&&", left, self._parse_relational())
        return left

    _RELATIONAL_TOKENS = {
        "EQ": "=",
        "NEQ": "!=",
        "LT": "<",
        "LE": "<=",
        "GT": ">",
        "GE": ">=",
    }

    def _parse_relational(self) -> Expression:
        left = self._parse_additive()
        token = self.peek()
        if token.kind in self._RELATIONAL_TOKENS:
            self.advance()
            right = self._parse_additive()
            return BinaryExpression(self._RELATIONAL_TOKENS[token.kind], left, right)
        return left

    def _parse_additive(self) -> Expression:
        left = self._parse_multiplicative()
        while True:
            if self.accept("PLUS"):
                left = BinaryExpression("+", left, self._parse_multiplicative())
            elif self.accept("MINUS"):
                left = BinaryExpression("-", left, self._parse_multiplicative())
            else:
                return left

    def _parse_multiplicative(self) -> Expression:
        left = self._parse_unary()
        while True:
            if self.accept("STAR"):
                left = BinaryExpression("*", left, self._parse_unary())
            elif self.accept("SLASH"):
                left = BinaryExpression("/", left, self._parse_unary())
            else:
                return left

    def _parse_unary(self) -> Expression:
        if self.accept("BANG"):
            return UnaryExpression("!", self._parse_unary())
        if self.accept("MINUS"):
            return UnaryExpression("-", self._parse_unary())
        if self.accept("PLUS"):
            return UnaryExpression("+", self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self) -> Expression:
        token = self.peek()
        if token.kind == "LPAREN":
            self.advance()
            expression = self._parse_expression()
            self.expect("RPAREN")
            return expression
        if token.kind == "VAR":
            return TermExpression(Variable(self.advance().value))
        if token.kind == "PARAM":
            return ParameterExpression(self.advance().value)
        if token.kind == "KEYWORD" and token.value in AggregateExpression.FUNCTIONS:
            return self._parse_aggregate()
        if token.kind == "KEYWORD" and token.value in FunctionCall.BUILTINS:
            return self._parse_function_call()
        if token.kind in ("INTEGER", "DOUBLE", "STRING") or (
            token.kind == "KEYWORD" and token.value in ("TRUE", "FALSE")
        ):
            return TermExpression(self._parse_literal())
        if token.kind == "IRI":
            return TermExpression(IRI(self.advance().value[1:-1]))
        if token.kind == "QNAME":
            return TermExpression(self._expand_qname(self.advance().value))
        raise self.error("expected an expression")

    def _parse_aggregate(self) -> Expression:
        function = self.advance().value
        self.expect("LPAREN")
        distinct = self.accept_keyword("DISTINCT") is not None
        if function == "COUNT" and self.accept("STAR"):
            argument: Optional[Expression] = None
        else:
            argument = self._parse_expression()
        self.expect("RPAREN")
        return AggregateExpression(function, argument, distinct)

    def _parse_function_call(self) -> Expression:
        name = self.advance().value
        self.expect("LPAREN")
        arguments: List[Expression] = []
        if self.peek().kind != "RPAREN":
            arguments.append(self._parse_expression())
            while self.accept("COMMA"):
                arguments.append(self._parse_expression())
        self.expect("RPAREN")
        return FunctionCall(name, arguments)


def _unescape_string(text: str) -> str:
    result: List[str] = []
    index = 0
    while index < len(text):
        char = text[index]
        if char == "\\" and index + 1 < len(text):
            escape = text[index + 1]
            mapping = {"n": "\n", "r": "\r", "t": "\t", '"': '"', "\\": "\\"}
            result.append(mapping.get(escape, escape))
            index += 2
        else:
            result.append(char)
            index += 1
    return "".join(result)


def parse_query(text: str) -> SelectQuery:
    """Parse a query string into a :class:`~repro.sparql.ast.SelectQuery`."""
    return Parser(text).parse_query()


def parse_update(text: str) -> UpdateRequest:
    """Parse an update string into an :class:`~repro.sparql.ast.UpdateRequest`."""
    return Parser(text).parse_update()
