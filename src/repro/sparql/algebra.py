"""Logical algebra for the SPARQL subset.

The translation follows the SPARQL algebra: basic graph patterns become
:class:`BGP` nodes, OPTIONAL becomes :class:`LeftJoin`, UNION becomes
:class:`Union`, filters become :class:`Filter`, and the solution modifiers
(grouping, ordering, projection, distinct, slicing) wrap the pattern tree.
The optimizer only reorders joins inside :class:`BGP` nodes; everything else
is evaluated as written.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..rdf.terms import Variable
from ..rdf.triples import TriplePattern
from .ast import (
    AggregateExpression,
    Expression,
    GroupGraphPattern,
    OrderCondition,
    Projection,
    SelectQuery,
    TermExpression,
)


class AlgebraNode:
    """Base class of all logical algebra nodes."""

    def children(self) -> Tuple["AlgebraNode", ...]:
        return ()

    def variables(self) -> Tuple[Variable, ...]:
        """Variables guaranteed (or possibly, for optionals) bound below."""
        seen: List[Variable] = []
        for child in self.children():
            for variable in child.variables():
                if variable not in seen:
                    seen.append(variable)
        return tuple(seen)


class BGP(AlgebraNode):
    """A basic graph pattern: a conjunction of triple patterns."""

    def __init__(self, patterns: Sequence[TriplePattern]):
        self.patterns = list(patterns)

    def variables(self) -> Tuple[Variable, ...]:
        seen: List[Variable] = []
        for pattern in self.patterns:
            for variable in pattern.variables():
                if variable not in seen:
                    seen.append(variable)
        return tuple(seen)

    def __repr__(self) -> str:
        return "BGP(%d patterns)" % len(self.patterns)


class Join(AlgebraNode):
    """Inner join of two sub-patterns on their shared variables."""

    def __init__(self, left: AlgebraNode, right: AlgebraNode):
        self.left = left
        self.right = right

    def children(self):
        return (self.left, self.right)

    def __repr__(self) -> str:
        return "Join(%r, %r)" % (self.left, self.right)


class LeftJoin(AlgebraNode):
    """OPTIONAL: keep all left solutions, extend with right when possible."""

    def __init__(self, left: AlgebraNode, right: AlgebraNode, condition: Optional[Expression] = None):
        self.left = left
        self.right = right
        self.condition = condition

    def children(self):
        return (self.left, self.right)

    def __repr__(self) -> str:
        return "LeftJoin(%r, %r)" % (self.left, self.right)


class Union(AlgebraNode):
    """UNION of alternative sub-patterns."""

    def __init__(self, alternatives: Sequence[AlgebraNode]):
        if len(alternatives) < 2:
            raise ValueError("Union requires at least two alternatives")
        self.alternatives = list(alternatives)

    def children(self):
        return tuple(self.alternatives)

    def __repr__(self) -> str:
        return "Union(%d alternatives)" % len(self.alternatives)


class Filter(AlgebraNode):
    """Filter solutions by a boolean expression."""

    def __init__(self, expression: Expression, child: AlgebraNode):
        self.expression = expression
        self.child = child

    def children(self):
        return (self.child,)

    def __repr__(self) -> str:
        return "Filter(%r)" % (self.expression,)


class Extend(AlgebraNode):
    """Bind a new variable to the value of an expression."""

    def __init__(self, child: AlgebraNode, variable: Variable, expression: Expression):
        self.child = child
        self.variable = variable
        self.expression = expression

    def children(self):
        return (self.child,)

    def variables(self) -> Tuple[Variable, ...]:
        base = list(super().variables())
        if self.variable not in base:
            base.append(self.variable)
        return tuple(base)

    def __repr__(self) -> str:
        return "Extend(%r)" % (self.variable,)


class Group(AlgebraNode):
    """GROUP BY with aggregate bindings.

    ``aggregates`` is a list of (output variable, AggregateExpression).
    """

    def __init__(
        self,
        child: AlgebraNode,
        group_variables: Sequence[Variable],
        aggregates: Sequence[Tuple[Variable, AggregateExpression]],
    ):
        self.child = child
        self.group_variables = list(group_variables)
        self.aggregates = list(aggregates)

    def children(self):
        return (self.child,)

    def variables(self) -> Tuple[Variable, ...]:
        result = list(self.group_variables)
        for variable, _aggregate in self.aggregates:
            if variable not in result:
                result.append(variable)
        return tuple(result)

    def __repr__(self) -> str:
        return "Group(by=%r, aggregates=%d)" % (self.group_variables, len(self.aggregates))


class OrderBy(AlgebraNode):
    def __init__(self, child: AlgebraNode, conditions: Sequence[OrderCondition]):
        self.child = child
        self.conditions = list(conditions)

    def children(self):
        return (self.child,)

    def __repr__(self) -> str:
        return "OrderBy(%d conditions)" % len(self.conditions)


class Project(AlgebraNode):
    def __init__(self, child: AlgebraNode, variables: Sequence[Variable]):
        self.child = child
        self.projected = list(variables)

    def children(self):
        return (self.child,)

    def variables(self) -> Tuple[Variable, ...]:
        return tuple(self.projected)

    def __repr__(self) -> str:
        return "Project(%r)" % (self.projected,)


class Distinct(AlgebraNode):
    def __init__(self, child: AlgebraNode):
        self.child = child

    def children(self):
        return (self.child,)

    def __repr__(self) -> str:
        return "Distinct()"


class Slice(AlgebraNode):
    def __init__(self, child: AlgebraNode, limit: Optional[int], offset: Optional[int]):
        self.child = child
        self.limit = limit
        self.offset = offset or 0

    def children(self):
        return (self.child,)

    def __repr__(self) -> str:
        return "Slice(limit=%r, offset=%r)" % (self.limit, self.offset)


# -- translation -------------------------------------------------------------------


def translate_pattern(group: GroupGraphPattern) -> AlgebraNode:
    """Translate a group graph pattern to an algebra tree."""
    node: Optional[AlgebraNode] = None
    if group.patterns:
        node = BGP(group.patterns)

    for alternatives in group.unions:
        union_node: AlgebraNode = Union([translate_pattern(alternative) for alternative in alternatives])
        node = union_node if node is None else Join(node, union_node)

    if node is None:
        node = BGP([])

    for optional in group.optionals:
        node = LeftJoin(node, translate_pattern(optional))

    for variable, expression in group.binds:
        node = Extend(node, variable, expression)

    for expression in group.filters:
        node = Filter(expression, node)

    return node


def translate_query(query: SelectQuery) -> AlgebraNode:
    """Translate a parsed SELECT query into a logical algebra tree."""
    node = translate_pattern(query.where)

    aggregates: List[Tuple[Variable, AggregateExpression]] = []
    plain_extends: List[Projection] = []
    if not query.is_select_all():
        for projection in query.projections:
            if isinstance(projection.expression, AggregateExpression):
                aggregates.append((projection.variable, projection.expression))
            elif projection.expression is not None:
                plain_extends.append(projection)

    if query.group_by or aggregates:
        node = Group(node, query.group_by, aggregates)

    for projection in plain_extends:
        node = Extend(node, projection.variable, projection.expression)

    for expression in query.having:
        node = Filter(expression, node)

    if query.order_by:
        node = OrderBy(node, query.order_by)

    node = Project(node, query.projected_variables())

    if query.distinct:
        node = Distinct(node)

    if query.limit is not None or query.offset:
        node = Slice(node, query.limit, query.offset)

    return node


def translate_delete_where(op) -> AlgebraNode:
    """Algebra tree whose solutions instantiate a DELETE WHERE template.

    The operation's quad pattern is evaluated exactly like a
    ``SELECT * WHERE { ... }`` over its variables — same BGP, same join
    ordering by the optimizer, same executors — and the engine substitutes
    each solution into the (identical) template to obtain the triples to
    remove.  Reusing the read-side algebra keeps update evaluation on the
    optimized, delta-aware scan path instead of a private interpreter.
    """
    pattern = translate_pattern(op.pattern)
    return Project(pattern, list(pattern.variables()))


def collect_bgps(node: AlgebraNode) -> List[BGP]:
    """Collect every BGP node of a tree (used by tests and the analyzer)."""
    found: List[BGP] = []
    stack = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, BGP):
            found.append(current)
        stack.extend(current.children())
    return found
