"""Syntax tree for the SPARQL subset.

The parser produces these nodes; ``algebra.py`` translates them into the
logical algebra consumed by the optimizer.  Expression nodes double as the
runtime expression representation evaluated by the executor.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

from ..rdf.terms import Term, Variable
from ..rdf.triples import TriplePattern


# -- expressions ----------------------------------------------------------------


class Expression:
    """Base class for filter / projection expressions."""

    def variables(self) -> Tuple[Variable, ...]:
        """Distinct variables referenced by the expression."""
        return ()

    def parameters(self) -> Tuple[str, ...]:
        """Distinct template parameter names referenced by the expression."""
        return ()


class TermExpression(Expression):
    """A constant term or a variable used as an expression."""

    __slots__ = ("term",)

    def __init__(self, term: Term):
        self.term = term

    def variables(self) -> Tuple[Variable, ...]:
        if isinstance(self.term, Variable):
            return (self.term,)
        return ()

    def __eq__(self, other) -> bool:
        return isinstance(other, TermExpression) and other.term == self.term

    def __hash__(self) -> int:
        return hash(("TermExpression", self.term))

    def __repr__(self) -> str:
        return "TermExpression(%r)" % (self.term,)


class ParameterExpression(Expression):
    """A ``%name`` template parameter in expression position."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def parameters(self) -> Tuple[str, ...]:
        return (self.name,)

    def __eq__(self, other) -> bool:
        return isinstance(other, ParameterExpression) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("ParameterExpression", self.name))

    def __repr__(self) -> str:
        return "ParameterExpression(%r)" % self.name


class UnaryExpression(Expression):
    """``!expr`` or ``-expr``."""

    __slots__ = ("operator", "operand")

    def __init__(self, operator: str, operand: Expression):
        if operator not in ("!", "-", "+"):
            raise ValueError("unsupported unary operator %r" % operator)
        self.operator = operator
        self.operand = operand

    def variables(self) -> Tuple[Variable, ...]:
        return self.operand.variables()

    def parameters(self) -> Tuple[str, ...]:
        return self.operand.parameters()

    def __repr__(self) -> str:
        return "UnaryExpression(%r, %r)" % (self.operator, self.operand)


class BinaryExpression(Expression):
    """Arithmetic, comparison or boolean binary expression."""

    __slots__ = ("operator", "left", "right")

    OPERATORS = ("||", "&&", "=", "!=", "<", "<=", ">", ">=", "+", "-", "*", "/")

    def __init__(self, operator: str, left: Expression, right: Expression):
        if operator not in self.OPERATORS:
            raise ValueError("unsupported binary operator %r" % operator)
        self.operator = operator
        self.left = left
        self.right = right

    def variables(self) -> Tuple[Variable, ...]:
        seen: List[Variable] = []
        for side in (self.left, self.right):
            for variable in side.variables():
                if variable not in seen:
                    seen.append(variable)
        return tuple(seen)

    def parameters(self) -> Tuple[str, ...]:
        seen: List[str] = []
        for side in (self.left, self.right):
            for name in side.parameters():
                if name not in seen:
                    seen.append(name)
        return tuple(seen)

    def __repr__(self) -> str:
        return "BinaryExpression(%r, %r, %r)" % (self.operator, self.left, self.right)


class FunctionCall(Expression):
    """Builtin function call: BOUND, REGEX, STR, LANG, DATATYPE."""

    __slots__ = ("name", "arguments")

    BUILTINS = ("BOUND", "REGEX", "STR", "LANG", "DATATYPE")

    def __init__(self, name: str, arguments: Sequence[Expression]):
        name = name.upper()
        if name not in self.BUILTINS:
            raise ValueError("unsupported function %r" % name)
        self.name = name
        self.arguments = list(arguments)

    def variables(self) -> Tuple[Variable, ...]:
        seen: List[Variable] = []
        for argument in self.arguments:
            for variable in argument.variables():
                if variable not in seen:
                    seen.append(variable)
        return tuple(seen)

    def parameters(self) -> Tuple[str, ...]:
        seen: List[str] = []
        for argument in self.arguments:
            for name in argument.parameters():
                if name not in seen:
                    seen.append(name)
        return tuple(seen)

    def __repr__(self) -> str:
        return "FunctionCall(%r, %r)" % (self.name, self.arguments)


class AggregateExpression(Expression):
    """COUNT / SUM / AVG / MIN / MAX, optionally DISTINCT; COUNT(*) allowed."""

    __slots__ = ("function", "argument", "distinct")

    FUNCTIONS = ("COUNT", "SUM", "AVG", "MIN", "MAX")

    def __init__(self, function: str, argument: Optional[Expression], distinct: bool = False):
        function = function.upper()
        if function not in self.FUNCTIONS:
            raise ValueError("unsupported aggregate %r" % function)
        if argument is None and function != "COUNT":
            raise ValueError("only COUNT may omit its argument (COUNT(*))")
        self.function = function
        self.argument = argument
        self.distinct = distinct

    def variables(self) -> Tuple[Variable, ...]:
        return self.argument.variables() if self.argument is not None else ()

    def parameters(self) -> Tuple[str, ...]:
        return self.argument.parameters() if self.argument is not None else ()

    def __repr__(self) -> str:
        return "AggregateExpression(%r, %r, distinct=%r)" % (self.function, self.argument, self.distinct)


# -- graph patterns ---------------------------------------------------------------


class ParameterTerm(Term):
    """Placeholder term for a ``%name`` parameter inside a triple pattern.

    It behaves like a term so that it can sit in a
    :class:`~repro.rdf.triples.TriplePattern`; template instantiation
    replaces it with a concrete term before the query reaches the optimizer.
    """

    __slots__ = ("name",)
    _sort_rank = 4

    def __init__(self, name: str):
        if not name:
            raise ValueError("parameter name must be non-empty")
        object.__setattr__(self, "name", name)

    def __setattr__(self, name, value):
        raise AttributeError("ParameterTerm is immutable")

    def _local_key(self):
        return (self.name,)

    def n3(self) -> str:
        return "%%%s" % self.name

    def is_concrete(self) -> bool:
        return False

    def __eq__(self, other) -> bool:
        return isinstance(other, ParameterTerm) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("ParameterTerm", self.name))

    def __repr__(self) -> str:
        return "ParameterTerm(%r)" % self.name


class GroupGraphPattern:
    """The contents of a ``{ ... }`` block.

    ``patterns`` are the basic-graph-pattern triples, ``filters`` the FILTER
    expressions, ``optionals`` the OPTIONAL sub-blocks and ``unions`` a list
    of alternative sub-blocks (each entry is a list of alternatives).
    """

    def __init__(
        self,
        patterns: Optional[List[TriplePattern]] = None,
        filters: Optional[List[Expression]] = None,
        optionals: Optional[List["GroupGraphPattern"]] = None,
        unions: Optional[List[List["GroupGraphPattern"]]] = None,
        binds: Optional[List[Tuple[Variable, Expression]]] = None,
    ):
        self.patterns = patterns if patterns is not None else []
        self.filters = filters if filters is not None else []
        self.optionals = optionals if optionals is not None else []
        self.unions = unions if unions is not None else []
        #: ``BIND(expression AS ?variable)`` clauses, in source order.
        self.binds = binds if binds is not None else []

    def variables(self) -> Tuple[Variable, ...]:
        seen: List[Variable] = []

        def record(items):
            for variable in items:
                if variable not in seen:
                    seen.append(variable)

        for pattern in self.patterns:
            record(pattern.variables())
        for expression in self.filters:
            record(expression.variables())
        for optional in self.optionals:
            record(optional.variables())
        for alternatives in self.unions:
            for alternative in alternatives:
                record(alternative.variables())
        for variable, expression in self.binds:
            record(expression.variables())
            record([variable])
        return tuple(seen)

    def parameters(self) -> Tuple[str, ...]:
        seen: List[str] = []

        def record(names):
            for name in names:
                if name not in seen:
                    seen.append(name)

        for pattern in self.patterns:
            for term in pattern:
                if isinstance(term, ParameterTerm):
                    record([term.name])
        for expression in self.filters:
            record(expression.parameters())
        for optional in self.optionals:
            record(optional.parameters())
        for alternatives in self.unions:
            for alternative in alternatives:
                record(alternative.parameters())
        for _variable, expression in self.binds:
            record(expression.parameters())
        return tuple(seen)

    def __repr__(self) -> str:
        return "GroupGraphPattern(patterns=%d, filters=%d, optionals=%d, unions=%d, binds=%d)" % (
            len(self.patterns),
            len(self.filters),
            len(self.optionals),
            len(self.unions),
            len(self.binds),
        )


# -- query ------------------------------------------------------------------------


class Projection:
    """One SELECT item: a plain variable or ``(expression AS ?alias)``."""

    __slots__ = ("variable", "expression")

    def __init__(self, variable: Variable, expression: Optional[Expression] = None):
        self.variable = variable
        self.expression = expression

    def __repr__(self) -> str:
        if self.expression is None:
            return "Projection(%r)" % (self.variable,)
        return "Projection(%r, %r)" % (self.variable, self.expression)


class OrderCondition:
    """One ORDER BY condition."""

    __slots__ = ("expression", "descending")

    def __init__(self, expression: Expression, descending: bool = False):
        self.expression = expression
        self.descending = descending

    def __repr__(self) -> str:
        return "OrderCondition(%r, descending=%r)" % (self.expression, self.descending)


class SelectQuery:
    """A parsed SELECT query."""

    def __init__(
        self,
        projections: Union[List[Projection], str],
        where: GroupGraphPattern,
        distinct: bool = False,
        group_by: Optional[List[Variable]] = None,
        having: Optional[List[Expression]] = None,
        order_by: Optional[List[OrderCondition]] = None,
        limit: Optional[int] = None,
        offset: Optional[int] = None,
        prefixes: Optional[dict] = None,
    ):
        self.projections = projections  # list of Projection, or "*"
        self.where = where
        self.distinct = distinct
        self.group_by = group_by if group_by is not None else []
        self.having = having if having is not None else []
        self.order_by = order_by if order_by is not None else []
        self.limit = limit
        self.offset = offset
        self.prefixes = prefixes if prefixes is not None else {}

    def is_select_all(self) -> bool:
        return self.projections == "*"

    def projected_variables(self) -> List[Variable]:
        if self.is_select_all():
            return list(self.where.variables())
        return [projection.variable for projection in self.projections]

    def has_aggregates(self) -> bool:
        if self.group_by:
            return True
        if self.is_select_all():
            return False
        return any(
            isinstance(projection.expression, AggregateExpression)
            for projection in self.projections
            if projection.expression is not None
        )

    def parameters(self) -> Tuple[str, ...]:
        seen: List[str] = []

        def record(names):
            for name in names:
                if name not in seen:
                    seen.append(name)

        record(self.where.parameters())
        if not self.is_select_all():
            for projection in self.projections:
                if projection.expression is not None:
                    record(projection.expression.parameters())
        for expression in self.having:
            record(expression.parameters())
        for condition in self.order_by:
            record(condition.expression.parameters())
        return tuple(seen)

    def __repr__(self) -> str:
        return "SelectQuery(projections=%r, where=%r, distinct=%r, limit=%r)" % (
            "*" if self.is_select_all() else len(self.projections),
            self.where,
            self.distinct,
            self.limit,
        )


# -- updates (SPARQL 1.1 Update subset) --------------------------------------------


class UpdateOperation:
    """Base class of the update operations in an update request."""


class InsertDataOp(UpdateOperation):
    """``INSERT DATA { ... }``: add a set of ground triples.

    The grammar forbids variables inside the data block; the parser
    enforces it, so ``triples`` only contains concrete terms.
    """

    __slots__ = ("triples",)

    def __init__(self, triples: Sequence[TriplePattern]):
        self.triples = list(triples)

    def __repr__(self) -> str:
        return "InsertDataOp(%d triples)" % len(self.triples)


class DeleteDataOp(UpdateOperation):
    """``DELETE DATA { ... }``: remove a set of ground triples."""

    __slots__ = ("triples",)

    def __init__(self, triples: Sequence[TriplePattern]):
        self.triples = list(triples)

    def __repr__(self) -> str:
        return "DeleteDataOp(%d triples)" % len(self.triples)


class DeleteWhereOp(UpdateOperation):
    """``DELETE WHERE { ... }``: the pattern doubles as the delete template.

    Per SPARQL 1.1 the block is a plain quad pattern — triples only, no
    FILTER / OPTIONAL / UNION — evaluated against the store; every
    instantiation of the template under a solution is removed.
    """

    __slots__ = ("pattern",)

    def __init__(self, pattern: GroupGraphPattern):
        self.pattern = pattern

    @property
    def triples(self) -> List[TriplePattern]:
        return self.pattern.patterns

    def __repr__(self) -> str:
        return "DeleteWhereOp(%d patterns)" % len(self.pattern.patterns)


class UpdateRequest:
    """A parsed update request: one or more operations, run in order.

    All operations of one request commit as a single atomic update — one
    ``data_version`` bump — matching the SPARQL 1.1 requirement that a
    request body is a transaction.
    """

    def __init__(
        self,
        operations: Sequence[UpdateOperation],
        prefixes: Optional[dict] = None,
    ):
        self.operations = list(operations)
        self.prefixes = prefixes if prefixes is not None else {}

    def __repr__(self) -> str:
        return "UpdateRequest(%d operations)" % len(self.operations)
