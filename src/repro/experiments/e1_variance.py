"""E1 — uniform sampling gives high-variance, non-normal runtime distributions.

The paper reports two numbers for this example:

* the runtime variance of BSBM-BI Q4 under uniformly drawn ProductType
  parameters is 674 * 10^6 (ms^2) — i.e. runtimes differ by orders of
  magnitude depending on how generic the chosen type is;
* the Kolmogorov–Smirnov distance between the runtime distribution of
  BSBM-BI Q2 and a fitted normal distribution is 0.89 with p ~ 1e-21 — the
  distribution is "extremely non-uniform" (far from normal).

We reproduce both measurements on the generated BSBM dataset.  Absolute
variances differ (smaller dataset, simulated runtime); the claims being
checked are the *shape* claims: the coefficient of variation is large, the
max/min runtime ratio spans orders of magnitude, and the KS distance is far
from what a normal sample would produce.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..bench.reporting import key_value_report
from ..bench.stats import RuntimeSummary, ks_distance_from_normal
from ..core.samplers import UniformSampler
from ..datagen.bsbm import template as bsbm_template
from . import common


@dataclass
class E1Result:
    """Measurements of experiment E1."""

    scale: str
    q4_summary: RuntimeSummary
    q4_variance: float
    q4_max_min_ratio: float
    q2_summary: RuntimeSummary
    q2_ks_distance: float
    q2_ks_pvalue: float

    def report(self) -> str:
        values = {
            "scale": self.scale,
            "Q4 runtime variance (ms^2)": self.q4_variance,
            "Q4 coefficient of variation": (self.q4_summary.variance ** 0.5) / self.q4_summary.mean,
            "Q4 max/min runtime ratio": self.q4_max_min_ratio,
            "Q2 KS distance from normal": self.q2_ks_distance,
            "Q2 KS p-value": self.q2_ks_pvalue,
        }
        return key_value_report(values, title="E1: variance and non-normality under uniform sampling")


def run(
    scale: str = "small",
    executions: int = None,
    seed: int = 7,
    executor: str = "vector",
    parallelism: int = 1,
) -> E1Result:
    """Run E1: uniform parameters for BSBM-BI Q4 (variance) and Q2 (KS test)."""
    preset = common.scale(scale)
    count = executions if executions is not None else preset.bindings_per_group * 2
    runner = common.bsbm_runner(scale, executor, parallelism)

    q4 = bsbm_template("bsbm_bi_q4")
    q4_sampler = UniformSampler(common.bsbm_type_space(scale), seed=seed)
    q4_result = runner.run_bindings(q4, q4_sampler.bindings(count))
    q4_summary = q4_result.summary()
    q4_runtimes = q4_result.runtimes()

    q2 = bsbm_template("bsbm_bi_q2")
    q2_sampler = UniformSampler(common.bsbm_product_space(scale), seed=seed + 1)
    q2_result = runner.run_bindings(q2, q2_sampler.bindings(count))
    q2_summary = q2_result.summary()
    distance, p_value = ks_distance_from_normal(q2_result.runtimes())

    return E1Result(
        scale=scale,
        q4_summary=q4_summary,
        q4_variance=q4_summary.variance,
        q4_max_min_ratio=(max(q4_runtimes) / min(q4_runtimes)) if min(q4_runtimes) > 0 else float("inf"),
        q2_summary=q2_summary,
        q2_ks_distance=distance,
        q2_ks_pvalue=p_value,
    )


def main() -> None:  # pragma: no cover - manual entry point
    print(run().report())


if __name__ == "__main__":  # pragma: no cover
    main()
