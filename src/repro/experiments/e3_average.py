"""E3 — the average runtime is not representative (bimodal runtimes).

The paper's table for BSBM-BI Q4 under uniformly drawn ProductType
parameters::

    Min     Median   Mean    q95      Max
    59 ms   354 ms   3.6 s   17.6 s   259 s

i.e. the mean is more than 10x the median, queries are either fast (the
chosen type is specific) or very slow (the type is generic), and no actual
execution is close to the mean.  We reproduce the same summary table and the
derived shape measurements:

* mean / median ratio,
* the fraction of executions whose runtime is within ±50 % of the mean
  (the paper: "there is no actual query with the runtime close to the mean"),
* a two-cluster split of the runtimes showing the fast/slow separation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..bench.reporting import key_value_report, summary_table
from ..bench.stats import RuntimeSummary
from ..core.samplers import UniformSampler
from ..datagen.bsbm import template as bsbm_template
from . import common


def split_two_clusters(values: List[float]) -> Tuple[List[float], List[float]]:
    """Split a sample into two clusters at the largest relative gap.

    Sorting the runtimes and cutting at the largest multiplicative gap
    separates the "fast" and "slow" modes; the paper's observation is that
    almost every execution falls into one of the two groups.
    """
    if len(values) < 2:
        return list(values), []
    ordered = sorted(values)
    best_gap = -1.0
    best_cut = 1
    for index in range(1, len(ordered)):
        low, high = ordered[index - 1], ordered[index]
        gap = (high / low) if low > 0 else float("inf")
        if gap > best_gap:
            best_gap = gap
            best_cut = index
    return ordered[:best_cut], ordered[best_cut:]


@dataclass
class E3Result:
    scale: str
    summary: RuntimeSummary
    mean_to_median_ratio: float
    fraction_near_mean: float
    fast_cluster: List[float]
    slow_cluster: List[float]

    def cluster_separation(self) -> float:
        """Ratio between the slow cluster's minimum and the fast cluster's maximum."""
        if not self.fast_cluster or not self.slow_cluster:
            return 1.0
        fast_max = max(self.fast_cluster)
        slow_min = min(self.slow_cluster)
        return slow_min / fast_max if fast_max > 0 else float("inf")

    def report(self) -> str:
        table = summary_table(self.summary, title="E3: BSBM-BI Q4 runtime summary under uniform sampling")
        values = {
            "mean / median ratio": self.mean_to_median_ratio,
            "fraction of runs within +-50% of the mean": self.fraction_near_mean,
            "fast cluster size": len(self.fast_cluster),
            "slow cluster size": len(self.slow_cluster),
            "slow/fast cluster separation": self.cluster_separation(),
        }
        return "%s\n%s" % (table, key_value_report(values))


def run(
    scale: str = "small",
    executions: int = None,
    seed: int = 13,
    executor: str = "vector",
    parallelism: int = 1,
) -> E3Result:
    """Run E3: BSBM-BI Q4 with uniformly drawn ProductType parameters."""
    preset = common.scale(scale)
    count = executions if executions is not None else preset.bindings_per_group * 2
    runner = common.bsbm_runner(scale, executor, parallelism)

    template = bsbm_template("bsbm_bi_q4")
    sampler = UniformSampler(common.bsbm_type_space(scale), seed=seed)
    result = runner.run_bindings(template, sampler.bindings(count))
    runtimes = result.runtimes()
    summary = RuntimeSummary.from_values(runtimes)

    near_mean = [value for value in runtimes if 0.5 * summary.mean <= value <= 1.5 * summary.mean]
    fast, slow = split_two_clusters(runtimes)
    return E3Result(
        scale=scale,
        summary=summary,
        mean_to_median_ratio=summary.mean_to_median_ratio(),
        fraction_near_mean=len(near_mean) / len(runtimes),
        fast_cluster=fast,
        slow_cluster=slow,
    )


def main() -> None:  # pragma: no cover - manual entry point
    print(run().report())


if __name__ == "__main__":  # pragma: no cover
    main()
