"""Experiment modules — one per table / figure / reported number in the paper.

* :mod:`e1_variance` — E1: runtime variance and KS-vs-normal under uniform sampling.
* :mod:`e2_stability` — E2: instability across independent parameter groups.
* :mod:`e3_average` — E3: mean vs median (bimodal runtimes) for BSBM-BI Q4.
* :mod:`e4_plans` — E4: plan diversity of LDBC Q3 for country pairs.
* :mod:`cost_correlation` — Section III: Pearson(Cout, runtime).
* :mod:`curation_eval` — the paper's proposal evaluated: per-class sampling
  restores P1–P3.
"""

from . import common, cost_correlation, curation_eval, e1_variance, e2_stability, e3_average, e4_plans

__all__ = [
    "common",
    "cost_correlation",
    "curation_eval",
    "e1_variance",
    "e2_stability",
    "e3_average",
    "e4_plans",
]
