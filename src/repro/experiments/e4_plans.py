"""E4 — different parameter bindings lead to different optimal plans.

The paper's example is LDBC Q3 (friends within two steps that have been to
countries X and Y): for a *rare* country pair (Finland, Zimbabwe) the
optimal plan starts from the few posts created in those countries, while for
a *frequent* pair (USA and Canada — in our skewed generator China and India
play that role) it starts from the person's friendship neighbourhood.

The experiment optimizes the query for many (person, countryX, countryY)
bindings and reports:

* how many distinct optimal plans occur,
* the plan histogram,
* whether the plan choice correlates with the country-pair frequency
  (frequent pairs vs rare pairs should favour different plans — the reason
  the paper wants the workload generator to "sample independently from two
  different classes").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..bench.reporting import key_value_report, text_table
from ..core.analyzer import BindingAnalysis, PlanCostAnalyzer, plan_signature_histogram
from ..core.samplers import UniformSampler
from ..datagen.ldbc import schema as ldbc_schema
from ..datagen.ldbc import template as ldbc_template
from . import common


@dataclass
class E4Result:
    scale: str
    analyses: List[BindingAnalysis]
    plan_histogram: Dict[str, int]
    frequent_pair_plans: Dict[str, int]
    rare_pair_plans: Dict[str, int]
    #: person IRI string -> (plans over frequent pairs, plans over rare pairs)
    per_person_plans: Dict[str, Tuple[Dict[str, int], Dict[str, int]]] = None
    #: distinct plans as seen by the query service's parameter-aware plan
    #: cache — must agree with the histogram: caching may never flatten the
    #: per-binding plan diversity this experiment demonstrates.
    cache_distinct_plans: int = 0

    def distinct_plans(self) -> int:
        return len(self.plan_histogram)

    def plans_differ_between_rare_and_frequent(self) -> bool:
        """True when rare and frequent country pairs favour different plans overall."""
        if not self.frequent_pair_plans or not self.rare_pair_plans:
            return False
        frequent_best = max(self.frequent_pair_plans, key=self.frequent_pair_plans.get)
        rare_best = max(self.rare_pair_plans, key=self.rare_pair_plans.get)
        return frequent_best != rare_best

    def person_flip_fraction(self) -> float:
        """Fraction of sampled persons whose optimal plan depends on the country pair.

        This is the paper's point stated per person: keeping the person fixed
        and only switching the country pair from "frequently co-visited" to
        "rarely co-visited" changes the optimal plan.
        """
        if not self.per_person_plans:
            return 0.0
        flips = 0
        for frequent_plans, rare_plans in self.per_person_plans.values():
            if not frequent_plans or not rare_plans:
                continue
            if set(frequent_plans) != set(rare_plans):
                flips += 1
        return flips / len(self.per_person_plans)

    def plan_depends_on_parameters(self) -> bool:
        """True when the plan choice demonstrably depends on the binding."""
        return self.distinct_plans() >= 2 and (
            self.person_flip_fraction() > 0 or self.plans_differ_between_rare_and_frequent()
        )

    def report(self) -> str:
        rows = [
            [signature[:70], str(count)]
            for signature, count in sorted(self.plan_histogram.items(), key=lambda item: -item[1])
        ]
        table = text_table(["optimal plan (join-tree signature)", "bindings"], rows)
        values = {
            "distinct optimal plans": self.distinct_plans(),
            "distinct plans in the service plan cache": self.cache_distinct_plans,
            "dominant plan differs between rare and frequent pairs": self.plans_differ_between_rare_and_frequent(),
            "fraction of persons whose plan flips with the country pair": self.person_flip_fraction(),
        }
        return "E4: plan diversity of LDBC Q3\n%s\n%s" % (table, key_value_report(values))


def _country_pairs_by_frequency(scale: str, pairs: int) -> Tuple[List[Tuple[str, str]], List[Tuple[str, str]]]:
    """Return (frequent pairs, rare pairs) of visited countries."""
    counts = common.visited_country_counts(scale)
    ordered = sorted(counts, key=lambda name: -counts[name])
    frequent = ordered[: max(2, pairs)]
    rare = ordered[-max(2, pairs):]
    frequent_pairs = [(frequent[i], frequent[(i + 1) % len(frequent)]) for i in range(len(frequent))]
    rare_pairs = [(rare[i], rare[(i + 1) % len(rare)]) for i in range(len(rare))]
    return frequent_pairs[:pairs], rare_pairs[:pairs]


def run(
    scale: str = "small",
    persons: int = 12,
    pairs: int = 4,
    seed: int = 17,
    executor: str = "vector",
    parallelism: int = 1,
) -> E4Result:
    """Analyze LDBC Q3 plans for frequent vs rare country pairs.

    Executions go through a fresh :class:`~repro.service.QueryService` so
    the experiment doubles as the acceptance check for the parameter-aware
    plan cache: repeated (person, country pair) bindings hit the cache, yet
    the cache's ``distinct_plans()`` still shows every plan the bindings
    legitimately flip between.
    """
    from ..service.service import QueryService

    engine = common.ldbc_engine(scale, executor, parallelism)
    template = ldbc_template("ldbc_q3")
    service = QueryService(engine)
    analyzer = PlanCostAnalyzer(engine, template, execute=True, service=service)

    person_sampler = UniformSampler(common.ldbc_person_space(scale), seed=seed)
    person_bindings = person_sampler.bindings(persons)
    frequent_pairs, rare_pairs = _country_pairs_by_frequency(scale, pairs)

    analyses: List[BindingAnalysis] = []
    frequent_analyses: List[BindingAnalysis] = []
    rare_analyses: List[BindingAnalysis] = []
    per_person_plans: Dict[str, Tuple[Dict[str, int], Dict[str, int]]] = {}
    for person_binding in person_bindings:
        person = person_binding["person"]
        person_frequent: List[BindingAnalysis] = []
        person_rare: List[BindingAnalysis] = []
        for country_x, country_y in frequent_pairs:
            analysis = analyzer.analyze_binding(
                {
                    "person": person,
                    "countryX": ldbc_schema.country_iri(country_x),
                    "countryY": ldbc_schema.country_iri(country_y),
                }
            )
            analyses.append(analysis)
            frequent_analyses.append(analysis)
            person_frequent.append(analysis)
        for country_x, country_y in rare_pairs:
            analysis = analyzer.analyze_binding(
                {
                    "person": person,
                    "countryX": ldbc_schema.country_iri(country_x),
                    "countryY": ldbc_schema.country_iri(country_y),
                }
            )
            analyses.append(analysis)
            rare_analyses.append(analysis)
            person_rare.append(analysis)
        per_person_plans[person.n3()] = (
            plan_signature_histogram(person_frequent),
            plan_signature_histogram(person_rare),
        )

    return E4Result(
        scale=scale,
        analyses=analyses,
        plan_histogram=plan_signature_histogram(analyses),
        frequent_pair_plans=plan_signature_histogram(frequent_analyses),
        rare_pair_plans=plan_signature_histogram(rare_analyses),
        per_person_plans=per_person_plans,
        cache_distinct_plans=service.plan_cache.distinct_plans(),
    )


def main() -> None:  # pragma: no cover - manual entry point
    print(run().report())


if __name__ == "__main__":  # pragma: no cover
    main()
