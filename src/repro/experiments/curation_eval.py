"""Evaluation of the paper's proposal: per-class parameter generation.

The paper defines the clustering problem and argues that sampling within the
resulting parameter classes restores properties P1–P3; it does not evaluate
a concrete algorithm (left as future work).  This experiment evaluates our
implementation of that proposal end-to-end:

1. draw candidate bindings for a template, analyze plan + Cout per binding,
2. partition them into parameter classes (Section III, relaxed as described
   in :mod:`repro.core.clustering`),
3. compare *uniform* sampling over the whole domain against sampling from
   the largest curated class (the "Q4a / Q4b" split) on:

   * P1 — coefficient of variation and mean/median ratio,
   * P2 — deviation of group means across independent samples,
   * P3 — number of distinct optimal plans.

The expectation (the paper's motivation) is that every measure improves
substantially within a class.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..bench.reporting import key_value_report
from ..bench.runner import WorkloadRunner
from ..bench.stats import GroupComparison, RuntimeSummary
from ..core.curation import CuratedWorkload, curate
from ..core.properties import WorkloadPropertyReport, check_workload_properties
from ..core.samplers import ClassSampler, UniformSampler
from ..datagen.bsbm import template as bsbm_template
from ..datagen.ldbc import template as ldbc_template
from ..sparql.template import QueryTemplate
from . import common


@dataclass
class SamplingEvaluation:
    """P1/P2/P3 measurements for one sampling strategy."""

    strategy: str
    summary: RuntimeSummary
    properties: WorkloadPropertyReport
    group_mean_deviation: float
    distinct_plans: int

    def as_dict(self) -> Dict[str, object]:
        return {
            "strategy": self.strategy,
            "mean_ms": self.summary.mean,
            "median_ms": self.summary.median,
            "cv": (self.summary.variance ** 0.5) / self.summary.mean if self.summary.mean else 0.0,
            "mean_over_median": self.summary.mean_to_median_ratio(),
            "group_mean_deviation": self.group_mean_deviation,
            "distinct_plans": self.distinct_plans,
            "P1": self.properties.p1.passed,
            "P2": self.properties.p2.passed if self.properties.p2 is not None else None,
            "P3": self.properties.p3.passed,
        }


@dataclass
class CurationEvaluation:
    """Uniform vs curated comparison for one template."""

    template_name: str
    curated: CuratedWorkload
    uniform: SamplingEvaluation
    per_class: List[SamplingEvaluation]

    def best_class(self) -> SamplingEvaluation:
        if not self.per_class:
            raise ValueError("no curated classes were evaluated")
        return self.per_class[0]

    def report(self) -> str:
        lines = ["Curation evaluation for %s" % self.template_name, ""]
        lines.append(key_value_report(self.uniform.as_dict(), title="uniform sampling (baseline)"))
        for evaluation in self.per_class:
            lines.append("")
            lines.append(key_value_report(evaluation.as_dict(), title=evaluation.strategy))
        return "\n".join(lines)


def _evaluate_sampler(
    runner: WorkloadRunner,
    template: QueryTemplate,
    sampler,
    strategy: str,
    groups: int,
    bindings_per_group: int,
) -> SamplingEvaluation:
    group_runtimes: List[List[float]] = []
    signatures: List[str] = []
    all_runtimes: List[float] = []
    for group_index in range(groups):
        fresh = sampler.fresh(group_index + 1) if hasattr(sampler, "fresh") else sampler
        result = runner.run_bindings(template, fresh.bindings(bindings_per_group))
        runtimes = result.runtimes()
        group_runtimes.append(runtimes)
        all_runtimes.extend(runtimes)
        signatures.extend(result.plan_signatures())
    properties = check_workload_properties(all_runtimes, signatures, groups=group_runtimes)
    comparison = GroupComparison.from_groups(group_runtimes)
    return SamplingEvaluation(
        strategy=strategy,
        summary=RuntimeSummary.from_values(all_runtimes),
        properties=properties,
        group_mean_deviation=comparison.mean_deviation(),
        distinct_plans=len(set(signatures)),
    )


def run(
    scale: str = "small",
    template_name: str = "bsbm_bi_q4",
    candidates: int = None,
    classes_to_evaluate: int = 2,
    cost_tolerance: float = 0.5,
    seed: int = 23,
    executor: str = "vector",
    parallelism: int = 1,
) -> CurationEvaluation:
    """Evaluate uniform vs per-class sampling for one template."""
    preset = common.scale(scale)
    candidate_count = candidates if candidates is not None else preset.bindings_per_group * 2

    if template_name.startswith("bsbm"):
        engine = common.bsbm_engine(scale, executor, parallelism)
        runner = common.bsbm_runner(scale, executor, parallelism)
        template = bsbm_template(template_name)
        space = {
            "bsbm_bi_q4": common.bsbm_type_space,
            "bsbm_bi_q1": common.bsbm_type_space,
            "bsbm_bi_q2": common.bsbm_product_space,
        }[template_name](scale)
    else:
        engine = common.ldbc_engine(scale, executor, parallelism)
        runner = common.ldbc_runner(scale, executor, parallelism)
        template = ldbc_template(template_name)
        space = {
            "ldbc_q2": common.ldbc_person_space,
            "ldbc_q3": common.ldbc_person_country_pair_space,
        }[template_name](scale)

    curated = curate(
        engine,
        template,
        space,
        candidates=candidate_count,
        cost_tolerance=cost_tolerance,
        min_class_size=max(3, preset.bindings_per_group // 10),
        seed=seed,
    )

    uniform = _evaluate_sampler(
        runner,
        template,
        UniformSampler(space, seed=seed + 1),
        strategy="uniform",
        groups=preset.groups,
        bindings_per_group=preset.bindings_per_group,
    )

    per_class: List[SamplingEvaluation] = []
    for parameter_class in curated.reportable_classes[:classes_to_evaluate]:
        evaluation = _evaluate_sampler(
            runner,
            template,
            ClassSampler(parameter_class, seed=seed + 2),
            strategy="curated class %s" % parameter_class.class_id,
            groups=preset.groups,
            bindings_per_group=preset.bindings_per_group,
        )
        per_class.append(evaluation)

    return CurationEvaluation(
        template_name=template_name,
        curated=curated,
        uniform=uniform,
        per_class=per_class,
    )


def main() -> None:  # pragma: no cover - manual entry point
    print(run().report())


if __name__ == "__main__":  # pragma: no cover
    main()
