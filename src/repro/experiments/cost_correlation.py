"""Section III — the Cout cost function correlates with runtime.

"In our experiments, the cost function Cout of the query strongly correlates
with its running time (ca. 85 % Pearson correlation coefficient); therefore,
if two queries have the same optimal logical plans (with regards to Cout),
they are expected to have very similar running time."

The experiment executes a mixed workload (several BSBM-BI and LDBC templates
with uniformly drawn parameters), records the actual ``Cout`` (sum of
intermediate join results) and the simulated runtime of every execution, and
computes the Pearson correlation between the two — overall and per template.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..bench.reporting import key_value_report, text_table
from ..bench.runner import QueryExecution, WorkloadRunner
from ..bench.stats import pearson_correlation
from ..core.samplers import UniformSampler
from ..datagen.bsbm import template as bsbm_template
from ..datagen.ldbc import template as ldbc_template
from . import common


@dataclass
class CostCorrelationResult:
    scale: str
    executions: List[QueryExecution]
    overall_pearson: float
    per_template_pearson: Dict[str, float]

    def report(self) -> str:
        rows = [
            [name, "%.3f" % value]
            for name, value in sorted(self.per_template_pearson.items())
        ]
        table = text_table(["template", "Pearson(Cout, runtime)"], rows)
        values = {"overall Pearson correlation": self.overall_pearson, "executions": len(self.executions)}
        return "Cout vs runtime correlation (Section III)\n%s\n%s" % (table, key_value_report(values))


#: The mixed workload used for the correlation measurement.
_BSBM_TEMPLATES = ("bsbm_bi_q1", "bsbm_bi_q2", "bsbm_bi_q4", "bsbm_bi_q6")
_LDBC_TEMPLATES = ("ldbc_q2", "ldbc_q4", "ldbc_q7")


def _space_for(template_name: str, scale: str):
    if template_name in ("bsbm_bi_q1", "bsbm_bi_q4"):
        return common.bsbm_type_space(scale)
    if template_name in ("bsbm_bi_q2", "bsbm_bi_q5"):
        return common.bsbm_product_space(scale)
    if template_name == "bsbm_bi_q6":
        return common.bsbm_producer_space(scale)
    if template_name in ("ldbc_q2", "ldbc_q4"):
        return common.ldbc_person_space(scale)
    if template_name == "ldbc_q7":
        return common.ldbc_country_space(scale)
    raise KeyError("no parameter space registered for template %r" % template_name)


def run(
    scale: str = "small",
    bindings_per_template: int = None,
    seed: int = 19,
    executor: str = "vector",
    parallelism: int = 1,
) -> CostCorrelationResult:
    """Measure the Pearson correlation between actual Cout and runtime."""
    preset = common.scale(scale)
    count = bindings_per_template if bindings_per_template is not None else preset.bindings_per_group

    executions: List[QueryExecution] = []
    per_template: Dict[str, float] = {}

    plan: List[Tuple[str, WorkloadRunner]] = []
    bsbm_runner = common.bsbm_runner(scale, executor, parallelism)
    ldbc_runner = common.ldbc_runner(scale, executor, parallelism)
    for name in _BSBM_TEMPLATES:
        plan.append((name, bsbm_runner))
    for name in _LDBC_TEMPLATES:
        plan.append((name, ldbc_runner))

    for offset, (template_name, runner) in enumerate(plan):
        template = bsbm_template(template_name) if template_name.startswith("bsbm") else ldbc_template(template_name)
        sampler = UniformSampler(_space_for(template_name, scale), seed=seed + offset)
        result = runner.run_bindings(template, sampler.bindings(count))
        executions.extend(result.executions)
        couts = result.couts()
        runtimes = result.runtimes()
        if len(set(couts)) > 1 and len(set(runtimes)) > 1:
            per_template[template_name] = pearson_correlation(couts, runtimes)

    overall = pearson_correlation(
        [execution.actual_cout for execution in executions],
        [execution.runtime_ms for execution in executions],
    )
    return CostCorrelationResult(
        scale=scale,
        executions=executions,
        overall_pearson=overall,
        per_template_pearson=per_template,
    )


def main() -> None:  # pragma: no cover - manual entry point
    print(run().report())


if __name__ == "__main__":  # pragma: no cover
    main()
