"""E2 — uniform sampling is not stable across parameter groups.

The paper samples 4 independent groups of 100 bindings for LDBC Q2 ("newest
20 posts of the user's friends"), runs the query per group and shows the
table of q10 / median / q90 / average per group: the group averages deviate
by up to ~40 %, percentiles and medians by up to ~100 %.  For BSBM-BI Q2 the
mean differs by up to ~15 % and the median by up to ~25 % between groups.

We reproduce both tables with the same protocol on the generated datasets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..bench.reporting import group_table, instability_report
from ..bench.stats import GroupComparison, RuntimeSummary
from ..core.samplers import UniformSampler
from ..datagen.bsbm import template as bsbm_template
from ..datagen.ldbc import template as ldbc_template
from ..sparql.template import QueryTemplate
from . import common


@dataclass
class StabilityResult:
    """Group-wise summaries for one template."""

    template_name: str
    group_summaries: List[RuntimeSummary]
    comparison: GroupComparison

    def table(self) -> str:
        return group_table(self.group_summaries, title="%s: independent parameter groups" % self.template_name)

    def report(self) -> str:
        return "%s\n%s" % (
            self.table(),
            instability_report(self.comparison, title="deviations across groups:"),
        )


@dataclass
class E2Result:
    scale: str
    ldbc_q2: StabilityResult
    bsbm_q2: StabilityResult

    def report(self) -> str:
        return "E2: sampling is not stable\n\n%s\n\n%s" % (self.ldbc_q2.report(), self.bsbm_q2.report())


def _run_groups(
    runner,
    template: QueryTemplate,
    sampler: UniformSampler,
    groups: int,
    bindings_per_group: int,
) -> StabilityResult:
    group_runtimes: List[List[float]] = []
    summaries: List[RuntimeSummary] = []
    for group_index in range(groups):
        group_sampler = sampler.fresh(group_index + 1)
        result = runner.run_bindings(template, group_sampler.bindings(bindings_per_group))
        runtimes = result.runtimes()
        group_runtimes.append(runtimes)
        summaries.append(RuntimeSummary.from_values(runtimes))
    return StabilityResult(
        template_name=template.name,
        group_summaries=summaries,
        comparison=GroupComparison.from_groups(group_runtimes),
    )


def run(
    scale: str = "small", seed: int = 11, executor: str = "vector", parallelism: int = 1
) -> E2Result:
    """Run E2 for LDBC Q2 and BSBM-BI Q2."""
    preset = common.scale(scale)

    ldbc_q2 = _run_groups(
        common.ldbc_runner(scale, executor, parallelism),
        ldbc_template("ldbc_q2"),
        UniformSampler(common.ldbc_person_space(scale), seed=seed),
        groups=preset.groups,
        bindings_per_group=preset.bindings_per_group,
    )
    bsbm_q2 = _run_groups(
        common.bsbm_runner(scale, executor, parallelism),
        bsbm_template("bsbm_bi_q2"),
        UniformSampler(common.bsbm_product_space(scale), seed=seed + 100),
        groups=preset.groups,
        bindings_per_group=preset.bindings_per_group,
    )
    return E2Result(scale=scale, ldbc_q2=ldbc_q2, bsbm_q2=bsbm_q2)


def main() -> None:  # pragma: no cover - manual entry point
    print(run().report())


if __name__ == "__main__":  # pragma: no cover
    main()
