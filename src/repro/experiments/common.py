"""Shared plumbing for the experiment modules.

Every experiment needs a generated dataset, a query engine over it, a
workload runner and the mined parameter domains.  This module centralises
that construction behind small *scale presets* so that tests run in seconds
("tiny"), the benchmark harness runs in tens of seconds ("small" /
"medium"), and anyone with patience can crank the scale up further.

Datasets and engines are cached per (benchmark, scale) because several
experiments share them.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Tuple

from ..bench.runner import WorkloadRunner
from ..core.domain import ParameterDomain, ParameterSpace, domain_from_values
from ..datagen.bsbm import BSBMConfig, BSBMDataset, generate_bsbm
from ..datagen.bsbm import schema as bsbm_schema
from ..datagen.ldbc import LDBCConfig, LDBCDataset, generate_ldbc
from ..datagen.ldbc import schema as ldbc_schema
from ..engine.query_engine import QueryEngine
from ..rdf.terms import IRI
from ..service.service import QueryService


@dataclass(frozen=True)
class ScalePreset:
    """One named dataset scale."""

    name: str
    bsbm_products: int
    ldbc_persons: int
    bindings_per_group: int
    groups: int


SCALES: Dict[str, ScalePreset] = {
    # For unit tests: everything finishes in a couple of seconds.
    "tiny": ScalePreset(name="tiny", bsbm_products=80, ldbc_persons=60, bindings_per_group=15, groups=3),
    # Default for the pytest benchmarks.
    "small": ScalePreset(name="small", bsbm_products=400, ldbc_persons=400, bindings_per_group=50, groups=4),
    # Closer to the paper's setup shape (still laptop-friendly).
    "medium": ScalePreset(name="medium", bsbm_products=1200, ldbc_persons=900, bindings_per_group=100, groups=4),
}

#: Seed used for all experiment datasets (distinct from sampler seeds).
DATASET_SEED = 20140331


def scale(name: str) -> ScalePreset:
    if name not in SCALES:
        raise KeyError("unknown scale %r (have %s)" % (name, sorted(SCALES)))
    return SCALES[name]


# -- cached dataset / engine construction ------------------------------------------------


@lru_cache(maxsize=None)
def bsbm_dataset(scale_name: str = "small") -> BSBMDataset:
    preset = scale(scale_name)
    # A deeper type hierarchy at the experiment scales keeps the fraction of
    # "generic" types small, which is what produces the paper's bimodal Q4
    # runtimes (most types are cheap leaves, a few touch most of the data).
    type_depth = 3 if preset.bsbm_products <= 100 else 4
    config = BSBMConfig(
        products=preset.bsbm_products,
        type_depth=type_depth,
        type_branching=3,
        features=max(60, preset.bsbm_products // 3),
        reviewers=max(30, preset.bsbm_products // 4),
        seed=DATASET_SEED,
    )
    return generate_bsbm(config)


@lru_cache(maxsize=None)
def _bsbm_engine(scale_name: str, executor: str, parallelism: int) -> QueryEngine:
    return QueryEngine(
        bsbm_dataset(scale_name).graph, executor=executor, parallelism=parallelism
    )


def bsbm_engine(
    scale_name: str = "small", executor: str = "vector", parallelism: int = 1
) -> QueryEngine:
    # Thin wrapper so default-arg and explicit-arg calls share one cache key.
    return _bsbm_engine(scale_name, executor, parallelism)


@lru_cache(maxsize=None)
def ldbc_dataset(scale_name: str = "small") -> LDBCDataset:
    preset = scale(scale_name)
    # Degrees and post volumes are heavy-tailed; letting the maximum degree
    # grow with the population keeps a few "hub" persons whose inclusion or
    # exclusion in a 50-100 binding sample moves the group average — the
    # instability the paper's E2 table shows.
    config = LDBCConfig(
        persons=preset.ldbc_persons,
        max_degree=min(100, max(12, preset.ldbc_persons // 5)),
        posts_per_degree=1.2,
        max_posts_per_person=250,
        seed=DATASET_SEED,
    )
    return generate_ldbc(config)


@lru_cache(maxsize=None)
def _ldbc_engine(scale_name: str, executor: str, parallelism: int) -> QueryEngine:
    return QueryEngine(
        ldbc_dataset(scale_name).graph, executor=executor, parallelism=parallelism
    )


def ldbc_engine(
    scale_name: str = "small", executor: str = "vector", parallelism: int = 1
) -> QueryEngine:
    # Thin wrapper so default-arg and explicit-arg calls share one cache key.
    return _ldbc_engine(scale_name, executor, parallelism)


@lru_cache(maxsize=None)
def _bsbm_service(scale_name: str, executor: str, parallelism: int) -> QueryService:
    return QueryService(bsbm_engine(scale_name, executor, parallelism))


def bsbm_service(
    scale_name: str = "small", executor: str = "vector", parallelism: int = 1
) -> QueryService:
    """Shared query service over the BSBM engine of one scale.

    Shared so that the plan cache amortizes across experiments in one
    process; consequently its metrics/cache counters are *cumulative* over
    every experiment run at this scale.  Reports that need per-run serving
    statistics should build their own ``QueryService`` (see
    ``repro.bench.suites.service_runner``).
    """
    return _bsbm_service(scale_name, executor, parallelism)


@lru_cache(maxsize=None)
def _ldbc_service(scale_name: str, executor: str, parallelism: int) -> QueryService:
    return QueryService(ldbc_engine(scale_name, executor, parallelism))


def ldbc_service(
    scale_name: str = "small", executor: str = "vector", parallelism: int = 1
) -> QueryService:
    """Shared query service over the LDBC engine of one scale (cumulative
    counters — see :func:`bsbm_service`)."""
    return _ldbc_service(scale_name, executor, parallelism)


def bsbm_runner(
    scale_name: str = "small", executor: str = "vector", parallelism: int = 1
) -> WorkloadRunner:
    """Service-backed runner: prepared templates + plan cache, identical records."""
    return WorkloadRunner(
        bsbm_engine(scale_name, executor, parallelism),
        service=bsbm_service(scale_name, executor, parallelism),
    )


def ldbc_runner(
    scale_name: str = "small", executor: str = "vector", parallelism: int = 1
) -> WorkloadRunner:
    """Service-backed runner: prepared templates + plan cache, identical records."""
    return WorkloadRunner(
        ldbc_engine(scale_name, executor, parallelism),
        service=ldbc_service(scale_name, executor, parallelism),
    )


def clear_caches() -> None:
    """Drop all cached datasets/engines (tests use this to bound memory)."""
    bsbm_dataset.cache_clear()
    _bsbm_engine.cache_clear()
    ldbc_dataset.cache_clear()
    _ldbc_engine.cache_clear()
    _bsbm_service.cache_clear()
    _ldbc_service.cache_clear()


# -- parameter domains mined from the generated datasets --------------------------------------


def bsbm_type_space(scale_name: str = "small") -> ParameterSpace:
    """Domain of the BSBM-BI Q4 / Q1 parameter: every product type."""
    dataset = bsbm_dataset(scale_name)
    return ParameterSpace([domain_from_values("type", dataset.product_type_iris())])


def bsbm_product_space(scale_name: str = "small") -> ParameterSpace:
    """Domain of the BSBM-BI Q2 / Q5 parameter: every product."""
    dataset = bsbm_dataset(scale_name)
    return ParameterSpace([domain_from_values("product", list(dataset.products))])


def bsbm_feature_space(scale_name: str = "small") -> ParameterSpace:
    dataset = bsbm_dataset(scale_name)
    return ParameterSpace([domain_from_values("feature", list(dataset.features))])


def bsbm_producer_space(scale_name: str = "small") -> ParameterSpace:
    dataset = bsbm_dataset(scale_name)
    return ParameterSpace([domain_from_values("producer", list(dataset.producers))])


def bsbm_type_feature_space(scale_name: str = "small") -> ParameterSpace:
    """Domain of the BSBM-BI Q8 parameters: product type x feature."""
    dataset = bsbm_dataset(scale_name)
    return ParameterSpace(
        [
            domain_from_values("type", dataset.product_type_iris()),
            domain_from_values("feature", list(dataset.features)),
        ]
    )


def ldbc_person_space(scale_name: str = "small") -> ParameterSpace:
    """Domain of the LDBC Q2 parameter: every person."""
    dataset = ldbc_dataset(scale_name)
    return ParameterSpace([domain_from_values("person", dataset.person_iris())])


def ldbc_person_country_pair_space(scale_name: str = "small") -> ParameterSpace:
    """Domain of the LDBC Q3 parameters: person x country x country."""
    dataset = ldbc_dataset(scale_name)
    countries = dataset.country_iris()
    return ParameterSpace(
        [
            domain_from_values("person", dataset.person_iris()),
            domain_from_values("countryX", list(countries)),
            domain_from_values("countryY", list(countries)),
        ]
    )


def ldbc_country_space(scale_name: str = "small") -> ParameterSpace:
    dataset = ldbc_dataset(scale_name)
    return ParameterSpace([domain_from_values("country", dataset.country_iris())])


def visited_country_counts(scale_name: str = "small") -> Dict[str, int]:
    """Posts per country name (used by E4 to pick rare/frequent pairs)."""
    dataset = ldbc_dataset(scale_name)
    counts: Dict[str, int] = {}
    for post in dataset.posts:
        counts[post.country] = counts.get(post.country, 0) + 1
    return counts
