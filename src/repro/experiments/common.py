"""Shared plumbing for the experiment modules.

Every experiment needs a generated dataset, a query engine over it, a
workload runner and the mined parameter domains.  This module centralises
that construction behind small *scale presets* so that tests run in seconds
("tiny"), the benchmark harness runs in tens of seconds ("small" /
"medium"), and anyone with patience can crank the scale up further.

Datasets and engines are cached per (benchmark, scale) because several
experiments share them.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional, Tuple

from ..bench.runner import WorkloadRunner
from ..core.domain import ParameterDomain, ParameterSpace, domain_from_values
from ..datagen.bsbm import BSBMConfig, BSBMDataset, generate_bsbm
from ..datagen.bsbm import schema as bsbm_schema
from ..datagen.ldbc import LDBCConfig, LDBCDataset, generate_ldbc
from ..datagen.ldbc import schema as ldbc_schema
from ..engine.query_engine import QueryEngine
from ..rdf.terms import IRI
from ..service.service import QueryService


@dataclass(frozen=True)
class ScalePreset:
    """One named dataset scale."""

    name: str
    bsbm_products: int
    ldbc_persons: int
    bindings_per_group: int
    groups: int


SCALES: Dict[str, ScalePreset] = {
    # For unit tests: everything finishes in a couple of seconds.
    "tiny": ScalePreset(name="tiny", bsbm_products=80, ldbc_persons=60, bindings_per_group=15, groups=3),
    # Default for the pytest benchmarks.
    "small": ScalePreset(name="small", bsbm_products=400, ldbc_persons=400, bindings_per_group=50, groups=4),
    # Closer to the paper's setup shape (still laptop-friendly).
    "medium": ScalePreset(name="medium", bsbm_products=1200, ldbc_persons=900, bindings_per_group=100, groups=4),
}

#: Seed used for all experiment datasets (distinct from sampler seeds).
DATASET_SEED = 20140331


def scale(name: str) -> ScalePreset:
    if name not in SCALES:
        raise KeyError("unknown scale %r (have %s)" % (name, sorted(SCALES)))
    return SCALES[name]


# -- snapshot cache directory (CLI --snapshot) -------------------------------------------

#: When set, the engine factories serve every store from a versioned
#: snapshot file under this directory (``{benchmark}_{scale}.snapshot``):
#: loaded zero-copy when present, built and persisted on first use.  The
#: CLI's ``--snapshot DIR`` flag sets this for a whole run, which warms
#: every experiment / curation / serving engine from disk instead of
#: re-encoding and re-sorting the dataset in-process.
SNAPSHOT_DIR: Optional[str] = None


def set_snapshot_dir(directory: Optional[str]) -> None:
    """Route subsequent engine construction through snapshots under ``directory``."""
    global SNAPSHOT_DIR
    SNAPSHOT_DIR = directory


def snapshot_path(directory: str, benchmark: str, scale_name: str) -> str:
    """The snapshot file one (benchmark, scale) store lives in."""
    return os.path.join(directory, "%s_%s.snapshot" % (benchmark, scale_name))


def _snapshot_engine(
    benchmark: str, scale_name: str, executor: str, parallelism: int, directory: str
) -> QueryEngine:
    """Engine over the snapshot of one (benchmark, scale) store.

    Loads the snapshot zero-copy when the file exists; otherwise generates
    the dataset once, persists it (with collected statistics, so later
    loads start with a warm optimizer), and *still serves from the loaded
    snapshot* — both the cold and the warm path execute against mapped
    columns, which is exactly what the bit-identity tests cover.
    """
    from ..store.snapshot import SnapshotError, load_snapshot
    from ..store.statistics import StoreStatistics

    path = snapshot_path(directory, benchmark, scale_name)
    # The fingerprint pins the snapshot to the exact generator config (all
    # knobs + seed): a cache built before a generator change is rebuilt,
    # never silently served as if it were the current dataset.
    config = bsbm_config(scale_name) if benchmark == "bsbm" else ldbc_config(scale_name)
    fingerprint = repr(config)
    snapshot = None
    if os.path.exists(path):
        try:
            loaded = load_snapshot(path)
        except SnapshotError:
            # Stale format version or corrupted file: rebuild below rather
            # than leaving the cache directory permanently broken.
            loaded = None
        if loaded is not None and loaded.fingerprint == fingerprint:
            snapshot = loaded
    if snapshot is None:
        os.makedirs(directory, exist_ok=True)
        dataset = bsbm_dataset(scale_name) if benchmark == "bsbm" else ldbc_dataset(scale_name)
        store = dataset.graph.store
        store.save(path, statistics=StoreStatistics(store).collect(), fingerprint=fingerprint)
        snapshot = load_snapshot(path)
    return QueryEngine(
        snapshot.store,
        executor=executor,
        parallelism=parallelism,
        statistics=snapshot.statistics(),
    )


# -- cached dataset / engine construction ------------------------------------------------


def bsbm_config(scale_name: str = "small") -> BSBMConfig:
    """The BSBM generator config of one scale preset.

    Shared by :func:`bsbm_dataset` and the snapshot benchmark (which must
    time regeneration of *exactly* the dataset a snapshotless run builds).
    """
    preset = scale(scale_name)
    # A deeper type hierarchy at the experiment scales keeps the fraction of
    # "generic" types small, which is what produces the paper's bimodal Q4
    # runtimes (most types are cheap leaves, a few touch most of the data).
    type_depth = 3 if preset.bsbm_products <= 100 else 4
    return BSBMConfig(
        products=preset.bsbm_products,
        type_depth=type_depth,
        type_branching=3,
        features=max(60, preset.bsbm_products // 3),
        reviewers=max(30, preset.bsbm_products // 4),
        seed=DATASET_SEED,
    )


@lru_cache(maxsize=None)
def bsbm_dataset(scale_name: str = "small") -> BSBMDataset:
    return generate_bsbm(bsbm_config(scale_name))


@lru_cache(maxsize=None)
def _bsbm_engine(
    scale_name: str, executor: str, parallelism: int, snapshot_dir: Optional[str]
) -> QueryEngine:
    if snapshot_dir is not None:
        return _snapshot_engine("bsbm", scale_name, executor, parallelism, snapshot_dir)
    return QueryEngine(
        bsbm_dataset(scale_name).graph, executor=executor, parallelism=parallelism
    )


def bsbm_engine(
    scale_name: str = "small",
    executor: str = "vector",
    parallelism: int = 1,
    snapshot_dir: Optional[str] = None,
) -> QueryEngine:
    # Thin wrapper so default-arg and explicit-arg calls share one cache key.
    return _bsbm_engine(scale_name, executor, parallelism, snapshot_dir or SNAPSHOT_DIR)


def ldbc_config(scale_name: str = "small") -> LDBCConfig:
    """The LDBC generator config of one scale preset (see :func:`bsbm_config`)."""
    preset = scale(scale_name)
    # Degrees and post volumes are heavy-tailed; letting the maximum degree
    # grow with the population keeps a few "hub" persons whose inclusion or
    # exclusion in a 50-100 binding sample moves the group average — the
    # instability the paper's E2 table shows.
    return LDBCConfig(
        persons=preset.ldbc_persons,
        max_degree=min(100, max(12, preset.ldbc_persons // 5)),
        posts_per_degree=1.2,
        max_posts_per_person=250,
        seed=DATASET_SEED,
    )


@lru_cache(maxsize=None)
def ldbc_dataset(scale_name: str = "small") -> LDBCDataset:
    return generate_ldbc(ldbc_config(scale_name))


@lru_cache(maxsize=None)
def _ldbc_engine(
    scale_name: str, executor: str, parallelism: int, snapshot_dir: Optional[str]
) -> QueryEngine:
    if snapshot_dir is not None:
        return _snapshot_engine("ldbc", scale_name, executor, parallelism, snapshot_dir)
    return QueryEngine(
        ldbc_dataset(scale_name).graph, executor=executor, parallelism=parallelism
    )


def ldbc_engine(
    scale_name: str = "small",
    executor: str = "vector",
    parallelism: int = 1,
    snapshot_dir: Optional[str] = None,
) -> QueryEngine:
    # Thin wrapper so default-arg and explicit-arg calls share one cache key.
    return _ldbc_engine(scale_name, executor, parallelism, snapshot_dir or SNAPSHOT_DIR)


@lru_cache(maxsize=None)
def _bsbm_service(
    scale_name: str, executor: str, parallelism: int, snapshot_dir: Optional[str]
) -> QueryService:
    return QueryService(bsbm_engine(scale_name, executor, parallelism, snapshot_dir))


def bsbm_service(
    scale_name: str = "small", executor: str = "vector", parallelism: int = 1
) -> QueryService:
    """Shared query service over the BSBM engine of one scale.

    Shared so that the plan cache amortizes across experiments in one
    process; consequently its metrics/cache counters are *cumulative* over
    every experiment run at this scale.  Reports that need per-run serving
    statistics should build their own ``QueryService`` (see
    ``repro.bench.suites.service_runner``).
    """
    return _bsbm_service(scale_name, executor, parallelism, SNAPSHOT_DIR)


@lru_cache(maxsize=None)
def _ldbc_service(
    scale_name: str, executor: str, parallelism: int, snapshot_dir: Optional[str]
) -> QueryService:
    return QueryService(ldbc_engine(scale_name, executor, parallelism, snapshot_dir))


def ldbc_service(
    scale_name: str = "small", executor: str = "vector", parallelism: int = 1
) -> QueryService:
    """Shared query service over the LDBC engine of one scale (cumulative
    counters — see :func:`bsbm_service`)."""
    return _ldbc_service(scale_name, executor, parallelism, SNAPSHOT_DIR)


def bsbm_runner(
    scale_name: str = "small", executor: str = "vector", parallelism: int = 1
) -> WorkloadRunner:
    """Service-backed runner: prepared templates + plan cache, identical records."""
    return WorkloadRunner(
        bsbm_engine(scale_name, executor, parallelism),
        service=bsbm_service(scale_name, executor, parallelism),
    )


def ldbc_runner(
    scale_name: str = "small", executor: str = "vector", parallelism: int = 1
) -> WorkloadRunner:
    """Service-backed runner: prepared templates + plan cache, identical records."""
    return WorkloadRunner(
        ldbc_engine(scale_name, executor, parallelism),
        service=ldbc_service(scale_name, executor, parallelism),
    )


def clear_caches() -> None:
    """Drop all cached datasets/engines (tests use this to bound memory)."""
    bsbm_dataset.cache_clear()
    _bsbm_engine.cache_clear()
    ldbc_dataset.cache_clear()
    _ldbc_engine.cache_clear()
    _bsbm_service.cache_clear()
    _ldbc_service.cache_clear()


# -- parameter domains mined from the generated datasets --------------------------------------


def bsbm_type_space(scale_name: str = "small") -> ParameterSpace:
    """Domain of the BSBM-BI Q4 / Q1 parameter: every product type."""
    dataset = bsbm_dataset(scale_name)
    return ParameterSpace([domain_from_values("type", dataset.product_type_iris())])


def bsbm_product_space(scale_name: str = "small") -> ParameterSpace:
    """Domain of the BSBM-BI Q2 / Q5 parameter: every product."""
    dataset = bsbm_dataset(scale_name)
    return ParameterSpace([domain_from_values("product", list(dataset.products))])


def bsbm_feature_space(scale_name: str = "small") -> ParameterSpace:
    dataset = bsbm_dataset(scale_name)
    return ParameterSpace([domain_from_values("feature", list(dataset.features))])


def bsbm_producer_space(scale_name: str = "small") -> ParameterSpace:
    dataset = bsbm_dataset(scale_name)
    return ParameterSpace([domain_from_values("producer", list(dataset.producers))])


def bsbm_type_feature_space(scale_name: str = "small") -> ParameterSpace:
    """Domain of the BSBM-BI Q8 parameters: product type x feature."""
    dataset = bsbm_dataset(scale_name)
    return ParameterSpace(
        [
            domain_from_values("type", dataset.product_type_iris()),
            domain_from_values("feature", list(dataset.features)),
        ]
    )


def ldbc_person_space(scale_name: str = "small") -> ParameterSpace:
    """Domain of the LDBC Q2 parameter: every person."""
    dataset = ldbc_dataset(scale_name)
    return ParameterSpace([domain_from_values("person", dataset.person_iris())])


def ldbc_person_country_pair_space(scale_name: str = "small") -> ParameterSpace:
    """Domain of the LDBC Q3 parameters: person x country x country."""
    dataset = ldbc_dataset(scale_name)
    countries = dataset.country_iris()
    return ParameterSpace(
        [
            domain_from_values("person", dataset.person_iris()),
            domain_from_values("countryX", list(countries)),
            domain_from_values("countryY", list(countries)),
        ]
    )


def ldbc_country_space(scale_name: str = "small") -> ParameterSpace:
    dataset = ldbc_dataset(scale_name)
    return ParameterSpace([domain_from_values("country", dataset.country_iris())])


def visited_country_counts(scale_name: str = "small") -> Dict[str, int]:
    """Posts per country name (used by E4 to pick rare/frequent pairs)."""
    dataset = ldbc_dataset(scale_name)
    counts: Dict[str, int] = {}
    for post in dataset.posts:
        counts[post.country] = counts.get(post.country, 0) + 1
    return counts
