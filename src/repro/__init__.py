"""repro — reproduction of "How to generate query parameters in RDF benchmarks?".

The package is organised in layers:

* :mod:`repro.rdf` / :mod:`repro.store` — RDF data model and a
  dictionary-encoded triple store with six permutation indexes, plus
  versioned store snapshots loaded zero-copy via ``np.memmap``
  (:mod:`repro.store.snapshot`),
* :mod:`repro.sparql` — a SPARQL-subset parser, algebra and query templates
  with ``%param`` substitution parameters,
* :mod:`repro.optimizer` / :mod:`repro.engine` — a ``Cout``-based optimizer
  (the paper's cost function) and a profiling executor with a simulated
  runtime model,
* :mod:`repro.datagen` — BSBM-like and LDBC SNB-like data generators plus
  their query templates,
* :mod:`repro.bench` — workload runner and the statistics the paper reports,
* :mod:`repro.service` — the concurrent serving layer: prepared templates,
  a parameter-aware plan cache, closed-loop client scheduling and serving
  metrics (QPS, latency percentiles, cache hit rates),
* :mod:`repro.core` — the paper's contribution: parameter domains, the
  plan/cost analyzer, the parameter-class partitioner, curation heuristics
  and P1/P2/P3 property checks,
* :mod:`repro.experiments` — one module per table/figure/number in the paper.
"""

from . import bench, core, datagen, engine, optimizer, rdf, service, sparql, store
from .engine import QueryEngine, QueryResult
from .rdf import Graph, IRI, Literal, Variable
from .service import QueryService
from .sparql import QueryTemplate, parse_query
from .store import TripleStore

__version__ = "1.0.0"

__all__ = [
    "Graph",
    "IRI",
    "Literal",
    "QueryEngine",
    "QueryResult",
    "QueryService",
    "QueryTemplate",
    "TripleStore",
    "Variable",
    "__version__",
    "bench",
    "core",
    "datagen",
    "engine",
    "optimizer",
    "parse_query",
    "rdf",
    "service",
    "sparql",
    "store",
]
