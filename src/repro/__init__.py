"""repro — reproduction of "How to generate query parameters in RDF benchmarks?".

The package is organised in layers:

* :mod:`repro.rdf` / :mod:`repro.store` — RDF data model and a
  dictionary-encoded triple store with six permutation indexes, plus
  versioned store snapshots loaded zero-copy via ``np.memmap``
  (:mod:`repro.store.snapshot`),
* :mod:`repro.sparql` — a SPARQL-subset parser, algebra and query templates
  with ``%param`` substitution parameters,
* :mod:`repro.optimizer` / :mod:`repro.engine` — a ``Cout``-based optimizer
  (the paper's cost function) and a profiling executor with a simulated
  runtime model,
* :mod:`repro.datagen` — BSBM-like and LDBC SNB-like data generators plus
  their query templates,
* :mod:`repro.bench` — workload runner and the statistics the paper reports,
* :mod:`repro.obs` — observability: operator-level query tracing
  (EXPLAIN ANALYZE), the metrics registry with Prometheus text exposition,
  and the slow-query log,
* :mod:`repro.service` — the concurrent serving layer: prepared templates,
  a parameter-aware plan cache, closed-loop client scheduling and serving
  metrics (QPS, latency percentiles, cache hit rates),
* :mod:`repro.api` — the **public facade**: :func:`connect` /
  :class:`Dataset` / :class:`Session` / streaming :class:`Cursor`, the
  structured :class:`ReproError` hierarchy, SPARQL JSON/CSV/TSV result
  serialisation, and a stdlib SPARQL 1.1 Protocol HTTP endpoint
  (:func:`serve`, :class:`SparqlServer`, :class:`RemoteEndpoint`),
* :mod:`repro.core` — the paper's contribution: parameter domains, the
  plan/cost analyzer, the parameter-class partitioner, curation heuristics
  and P1/P2/P3 property checks,
* :mod:`repro.experiments` — one module per table/figure/number in the paper.

The facade is the documented entry point::

    import repro

    dataset = repro.connect("bsbm:tiny")              # or a .snapshot path
    for row in dataset.query("SELECT ?s ?p ?o WHERE { ?s ?p ?o }", limit=5):
        print(row)
    server = repro.serve(dataset, port=0)             # SPARQL 1.1 endpoint
"""

from . import api, bench, core, datagen, engine, obs, optimizer, rdf, service, sparql, store
from .api import (
    Cursor,
    Dataset,
    ExecutionError,
    ParseError,
    PlanError,
    QueryTimeout,
    RemoteEndpoint,
    ReproError,
    ServerOverloadedError,
    Session,
    SparqlServer,
    WorkerPool,
    connect,
    serve,
    serve_pool,
)
from .bench import WorkloadRunner
from .engine import QueryEngine, QueryResult, RowStream
from .rdf import BNode, Graph, IRI, Literal, Triple, TriplePattern, Variable
from .service import QueryService
from .sparql import QueryTemplate, parse_query, translate_query
from .store import TripleStore

__version__ = "1.1.0"

__all__ = [
    "BNode",
    "Cursor",
    "Dataset",
    "ExecutionError",
    "Graph",
    "IRI",
    "Literal",
    "ParseError",
    "PlanError",
    "QueryEngine",
    "QueryResult",
    "QueryService",
    "QueryTemplate",
    "QueryTimeout",
    "RemoteEndpoint",
    "ReproError",
    "RowStream",
    "ServerOverloadedError",
    "Session",
    "SparqlServer",
    "Triple",
    "TriplePattern",
    "TripleStore",
    "Variable",
    "WorkerPool",
    "WorkloadRunner",
    "__version__",
    "api",
    "bench",
    "connect",
    "core",
    "datagen",
    "engine",
    "obs",
    "optimizer",
    "parse_query",
    "rdf",
    "serve",
    "serve_pool",
    "service",
    "sparql",
    "store",
    "translate_query",
]
