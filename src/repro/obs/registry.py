"""A unified metrics registry with Prometheus text exposition.

:class:`MetricsRegistry` replaces the ad-hoc counter dicts that used to
live in ``service/metrics.py`` and ``api/server.py`` with three first-class
instrument families:

* :class:`Counter` — monotonic (labelled) totals,
* :class:`Gauge` — point-in-time values, settable or computed at scrape
  time from a callback (QPS, latency percentiles),
* :class:`Histogram` — fixed upper-bound buckets with cumulative counts,
  ``_sum`` and ``_count``, Prometheus-style.

``expose_text()`` renders the standard text format (``# HELP`` / ``# TYPE``
lines, escaped label values, ``le="+Inf"`` closing bucket);
``render_text()`` concatenates several registries — the HTTP endpoint
serves its own request counters next to the session's serving metrics.
All instruments are thread-safe; registration order is exposition order.
"""

from __future__ import annotations

import json as _json
import math
import threading
from typing import Callable, Dict, List, Optional, Sequence, Tuple

#: default latency buckets (milliseconds) — roughly logarithmic, covering
#: sub-millisecond plan-cache hits up to multi-second analytical queries.
LATENCY_BUCKETS_MS = (0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000)


def escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text format."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def escape_help(text: str) -> str:
    """Escape a HELP string per the Prometheus text format."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def format_value(value: float) -> str:
    """Render a sample value (integers without a decimal point)."""
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 2**53:
        return "%d" % int(value)
    return repr(float(value))


def _label_text(label_names: Sequence[str], label_values: Tuple[str, ...]) -> str:
    if not label_names:
        return ""
    pairs = ",".join(
        '%s="%s"' % (name, escape_label_value(str(value)))
        for name, value in zip(label_names, label_values)
    )
    return "{%s}" % pairs


class _Metric:
    """Shared machinery: name, help, label resolution, one lock."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str, label_names: Sequence[str] = ()):
        self.name = name
        self.help = help_text
        self.label_names = tuple(label_names)
        self._lock = threading.Lock()

    def _key(self, labels: Dict[str, object]) -> Tuple[str, ...]:
        if set(labels) != set(self.label_names):
            raise ValueError(
                "metric %s takes labels %r, got %r"
                % (self.name, self.label_names, tuple(sorted(labels)))
            )
        return tuple(str(labels[name]) for name in self.label_names)

    def _header(self) -> List[str]:
        return [
            "# HELP %s %s" % (self.name, escape_help(self.help)),
            "# TYPE %s %s" % (self.name, self.kind),
        ]


class Counter(_Metric):
    """A monotonically increasing total, optionally labelled."""

    kind = "counter"

    def __init__(self, name: str, help_text: str, label_names: Sequence[str] = ()):
        super().__init__(name, help_text, label_names)
        self._values: Dict[Tuple[str, ...], float] = {}

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise ValueError("counters only go up; got increment %r" % (amount,))
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        with self._lock:
            return self._values.get(self._key(labels), 0.0)

    def total(self) -> float:
        """Sum over every label combination."""
        with self._lock:
            return sum(self._values.values())

    def clear(self) -> None:
        with self._lock:
            self._values.clear()

    def expose(self) -> List[str]:
        lines = self._header()
        with self._lock:
            items = sorted(self._values.items())
        if not items and not self.label_names:
            items = [((), 0.0)]
        for key, value in items:
            lines.append(
                "%s%s %s" % (self.name, _label_text(self.label_names, key), format_value(value))
            )
        return lines

    def as_dict(self) -> Dict[str, float]:
        with self._lock:
            items = sorted(self._values.items())
        if not self.label_names:
            return {self.name: items[0][1] if items else 0.0}
        return {
            self.name + _label_text(self.label_names, key): value for key, value in items
        }


class Gauge(_Metric):
    """A point-in-time value: set directly, or computed at scrape time."""

    kind = "gauge"

    def __init__(
        self,
        name: str,
        help_text: str,
        callback: Optional[Callable[[], float]] = None,
    ):
        super().__init__(name, help_text, ())
        self._value = 0.0
        self._callback = callback

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def value(self) -> float:
        if self._callback is not None:
            return float(self._callback())
        with self._lock:
            return self._value

    def clear(self) -> None:
        self.set(0.0)

    def expose(self) -> List[str]:
        return self._header() + ["%s %s" % (self.name, format_value(self.value()))]

    def as_dict(self) -> Dict[str, float]:
        return {self.name: self.value()}


class Histogram(_Metric):
    """Fixed-bucket histogram with cumulative exposition.

    ``buckets`` are the finite upper bounds, ascending; an implicit
    ``+Inf`` bucket closes the distribution.  Exposed counts are
    cumulative (each ``le`` bucket includes every smaller one), so bucket
    values are non-decreasing and the ``+Inf`` bucket equals ``_count`` —
    the invariants the round-trip test enforces.
    """

    kind = "histogram"

    def __init__(self, name: str, help_text: str, buckets: Sequence[float]):
        super().__init__(name, help_text, ())
        bounds = tuple(float(bound) for bound in buckets)
        if not bounds or any(later <= earlier for later, earlier in zip(bounds[1:], bounds)):
            raise ValueError("histogram buckets must be ascending and non-empty")
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)  # last slot: > max bound
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        with self._lock:
            self._sum += value
            self._count += 1
            for position, bound in enumerate(self.buckets):
                if value <= bound:
                    self._counts[position] += 1
                    return
            self._counts[-1] += 1

    def clear(self) -> None:
        with self._lock:
            self._counts = [0] * (len(self.buckets) + 1)
            self._sum = 0.0
            self._count = 0

    def expose(self) -> List[str]:
        lines = self._header()
        with self._lock:
            counts, total_sum, total = list(self._counts), self._sum, self._count
        cumulative = 0
        for bound, count in zip(self.buckets, counts):
            cumulative += count
            lines.append(
                '%s_bucket{le="%s"} %d' % (self.name, format_value(bound), cumulative)
            )
        lines.append('%s_bucket{le="+Inf"} %d' % (self.name, total))
        lines.append("%s_sum %s" % (self.name, format_value(total_sum)))
        lines.append("%s_count %d" % (self.name, total))
        return lines

    def as_dict(self) -> Dict[str, float]:
        with self._lock:
            return {
                self.name + "_sum": self._sum,
                self.name + "_count": float(self._count),
            }


class MetricsRegistry:
    """Orders and exposes a set of instruments; names are unique."""

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: Dict[str, _Metric] = {}

    def _register(self, metric: _Metric) -> _Metric:
        with self._lock:
            existing = self._metrics.get(metric.name)
            if existing is not None:
                if type(existing) is not type(metric):
                    raise ValueError(
                        "metric %s already registered with a different type" % metric.name
                    )
                return existing
            self._metrics[metric.name] = metric
            return metric

    def counter(self, name: str, help_text: str, labels: Sequence[str] = ()) -> Counter:
        return self._register(Counter(name, help_text, labels))  # type: ignore[return-value]

    def gauge(
        self,
        name: str,
        help_text: str,
        callback: Optional[Callable[[], float]] = None,
    ) -> Gauge:
        return self._register(Gauge(name, help_text, callback))  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help_text: str,
        buckets: Sequence[float] = LATENCY_BUCKETS_MS,
    ) -> Histogram:
        return self._register(Histogram(name, help_text, buckets))  # type: ignore[return-value]

    def metrics(self) -> List[_Metric]:
        with self._lock:
            return list(self._metrics.values())

    def clear(self) -> None:
        """Reset every instrument to zero (report/test isolation)."""
        for metric in self.metrics():
            metric.clear()

    def expose_text(self) -> str:
        """The Prometheus text exposition of every registered metric."""
        return render_text([self])

    def as_dict(self) -> Dict[str, float]:
        """Flat ``{sample name: value}`` mapping (the JSON exposition)."""
        flat: Dict[str, float] = {}
        for metric in self.metrics():
            flat.update(metric.as_dict())
        return flat

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)

    def __repr__(self) -> str:
        return "MetricsRegistry(%d metrics)" % len(self)


def render_text(registries: Sequence[MetricsRegistry]) -> str:
    """One text-format document over several registries, duplicates dropped."""
    lines: List[str] = []
    seen = set()
    for registry in registries:
        for metric in registry.metrics():
            if metric.name in seen:
                continue
            seen.add(metric.name)
            lines.extend(metric.expose())
    return "\n".join(lines) + "\n" if lines else ""


# -- cross-process dumps ------------------------------------------------------
#
# A *dump* is a picklable, JSON-friendly description of every instrument in
# one or more registries: ``{name: {"kind", "help", ...state...}}``.  It is
# the unit the prefork worker pool ships over its control pipes — each
# worker dumps its registries, the parent merges the dumps, and any worker
# can render the merged result as JSON samples or Prometheus text.
#
# Merge semantics: counters and histograms are true totals, so they sum
# (per label combination / per bucket).  Gauges also sum — correct for
# occupancy- and rate-style gauges (in-flight requests, QPS); for
# percentile-style gauges the sum is meaningless and the cross-worker
# latency distribution must be read from the merged histogram instead.


def _dump_metric(metric: _Metric) -> Dict:
    if isinstance(metric, Counter):
        with metric._lock:
            values = {_json.dumps(list(key)): value for key, value in metric._values.items()}
        return {
            "kind": "counter",
            "help": metric.help,
            "labels": list(metric.label_names),
            "values": values,
        }
    if isinstance(metric, Gauge):
        return {"kind": "gauge", "help": metric.help, "value": metric.value()}
    if isinstance(metric, Histogram):
        with metric._lock:
            counts = list(metric._counts)
            total_sum, total = metric._sum, metric._count
        return {
            "kind": "histogram",
            "help": metric.help,
            "buckets": list(metric.buckets),
            "counts": counts,
            "sum": total_sum,
            "count": total,
        }
    raise TypeError("cannot dump metric of type %s" % type(metric).__name__)


def dump_registries(registries: Sequence[MetricsRegistry]) -> Dict[str, Dict]:
    """One mergeable dump over several registries (duplicate names dropped,
    first registration wins — mirroring :func:`render_text`)."""
    dump: Dict[str, Dict] = {}
    for registry in registries:
        for metric in registry.metrics():
            if metric.name not in dump:
                dump[metric.name] = _dump_metric(metric)
    return dump


def merge_dumps(dumps: Sequence[Dict[str, Dict]]) -> Dict[str, Dict]:
    """Aggregate several dumps into one (see the merge semantics above).

    Instruments sharing a name must share a kind; label sets and histogram
    buckets follow the first dump that mentions the name (workers run the
    same code, so in practice they always agree).
    """
    merged: Dict[str, Dict] = {}
    for dump in dumps:
        for name, entry in dump.items():
            mine = merged.get(name)
            if mine is None:
                merged[name] = {
                    key: (dict(value) if isinstance(value, dict) else list(value) if isinstance(value, list) else value)
                    for key, value in entry.items()
                }
                continue
            if mine["kind"] != entry["kind"]:
                raise ValueError(
                    "cannot merge metric %s: kind %s vs %s"
                    % (name, mine["kind"], entry["kind"])
                )
            if entry["kind"] == "counter":
                for key, value in entry["values"].items():
                    mine["values"][key] = mine["values"].get(key, 0.0) + value
            elif entry["kind"] == "gauge":
                mine["value"] += entry["value"]
            else:  # histogram
                if list(entry["buckets"]) != list(mine["buckets"]):
                    raise ValueError("cannot merge histogram %s: bucket mismatch" % name)
                mine["counts"] = [a + b for a, b in zip(mine["counts"], entry["counts"])]
                mine["sum"] += entry["sum"]
                mine["count"] += entry["count"]
    return merged


def flatten_dump(dump: Dict[str, Dict]) -> Dict[str, float]:
    """The flat ``{sample name: value}`` mapping of a dump (JSON exposition),
    matching :meth:`MetricsRegistry.as_dict` sample names."""
    flat: Dict[str, float] = {}
    for name, entry in sorted(dump.items()):
        if entry["kind"] == "counter":
            labels = entry["labels"]
            if not labels:
                values = entry["values"]
                flat[name] = next(iter(values.values())) if values else 0.0
                continue
            for key, value in sorted(entry["values"].items()):
                flat[name + _label_text(labels, tuple(_json.loads(key)))] = value
        elif entry["kind"] == "gauge":
            flat[name] = entry["value"]
        else:
            flat[name + "_sum"] = entry["sum"]
            flat[name + "_count"] = float(entry["count"])
    return flat


def render_dump_text(dump: Dict[str, Dict]) -> str:
    """Prometheus text exposition of a (possibly merged) dump."""
    lines: List[str] = []
    for name, entry in dump.items():
        lines.append("# HELP %s %s" % (name, escape_help(entry["help"])))
        lines.append("# TYPE %s %s" % (name, entry["kind"]))
        if entry["kind"] == "counter":
            labels = entry["labels"]
            items = sorted(entry["values"].items())
            if not items and not labels:
                items = [("", 0.0)]
            for key, value in items:
                label_values = tuple(_json.loads(key)) if labels else ()
                lines.append(
                    "%s%s %s" % (name, _label_text(labels, label_values), format_value(value))
                )
        elif entry["kind"] == "gauge":
            lines.append("%s %s" % (name, format_value(entry["value"])))
        else:
            cumulative = 0
            for bound, count in zip(entry["buckets"], entry["counts"]):
                cumulative += count
                lines.append(
                    '%s_bucket{le="%s"} %d' % (name, format_value(bound), cumulative)
                )
            lines.append('%s_bucket{le="+Inf"} %d' % (name, entry["count"]))
            lines.append("%s_sum %s" % (name, format_value(entry["sum"])))
            lines.append("%s_count %d" % (name, entry["count"]))
    return "\n".join(lines) + "\n" if lines else ""


def counter_total(dump: Dict[str, Dict], name: str) -> float:
    """Sum of one dumped counter over every label combination (0 if absent)."""
    entry = dump.get(name)
    if entry is None or entry["kind"] != "counter":
        return 0.0
    return sum(entry["values"].values())


def quantile_from_histogram(histogram: Histogram, fraction: float) -> float:
    """Approximate a quantile from bucket counts (linear within a bucket).

    Serving reports keep their exact list-based percentiles; this helper
    exists for consumers that only have the exposition.
    """
    with histogram._lock:
        counts = list(histogram._counts)
        total = histogram._count
    if total == 0:
        return 0.0
    rank = max(1, int(math.ceil(fraction * total)))
    cumulative = 0
    previous_bound = 0.0
    for bound, count in zip(histogram.buckets, counts):
        if count:
            if cumulative + count >= rank:
                within = (rank - cumulative) / count
                return previous_bound + (bound - previous_bound) * within
            cumulative += count
        previous_bound = bound
    return previous_bound
