"""Observability: operator tracing, the metrics registry, slow-query logging.

The data plane of the estimate → execute → correct loop.  Both executors
emit per-operator :class:`Span` trees through a :class:`Tracer` (rows
in/out, batches, morsels, estimated vs actual cardinality, monotonic
wall-clock time); a :class:`MetricsRegistry` unifies counters, gauges and
fixed-bucket histograms behind Prometheus text exposition; a
:class:`TraceBuffer` retains recent traces for ``GET /traces``; a
:class:`SlowQueryLog` writes JSON lines for queries over a threshold; and
:func:`render_analyze` produces the ``explain --analyze`` report with its
q-error drift summary.

Tracing is strictly opt-in: the disabled mode is ``tracer=None`` and costs
one ``None`` check per plan node; traced execution is bit-identical to
untraced execution (spans observe, never influence).
"""

from .analyze import DRIFT_THRESHOLD, drift_summary, q_error, render_analyze
from .registry import (
    Counter,
    Gauge,
    Histogram,
    LATENCY_BUCKETS_MS,
    MetricsRegistry,
    format_value,
    quantile_from_histogram,
    render_text,
)
from .slowlog import DEFAULT_SLOW_MS, SlowQueryLog
from .trace import (
    JOIN_SPAN_NAMES,
    NullTracer,
    QueryTrace,
    SPAN_NAMES,
    Span,
    TraceBuffer,
    TraceIdGenerator,
    Tracer,
    coerce_tracer,
    default_trace_seed,
    span_name,
)

__all__ = [
    "Counter",
    "DEFAULT_SLOW_MS",
    "DRIFT_THRESHOLD",
    "Gauge",
    "Histogram",
    "JOIN_SPAN_NAMES",
    "LATENCY_BUCKETS_MS",
    "MetricsRegistry",
    "NullTracer",
    "QueryTrace",
    "SPAN_NAMES",
    "SlowQueryLog",
    "Span",
    "TraceBuffer",
    "TraceIdGenerator",
    "Tracer",
    "coerce_tracer",
    "default_trace_seed",
    "drift_summary",
    "format_value",
    "q_error",
    "quantile_from_histogram",
    "render_analyze",
    "render_text",
    "span_name",
]
