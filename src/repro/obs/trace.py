"""Operator-level query tracing.

A :class:`Tracer` observes one query execution: both executors wrap every
plan-node dispatch in a :class:`Span` that records the node's estimated
cardinality next to what actually happened — rows in/out, batches, morsel
count and wall-clock time (monotonic, via ``time.perf_counter``).  Finished
traces become immutable :class:`QueryTrace` objects that a bounded
:class:`TraceBuffer` retains for the ``/traces`` endpoint and the
``explain --analyze`` renderer.

Design constraints, in order:

* **Zero cost when off.**  The disabled mode is ``tracer=None``; the hot
  dispatch path pays one attribute load and a ``None`` check per plan node
  and allocates nothing.  ``coerce_tracer`` normalises disabled tracer
  objects to ``None`` once per query so operators never re-check a flag.
* **Bit-identical results when on.**  Spans only *read* the execution
  (timings, lengths); they never touch batches, profiles or work counters.
* **Deterministic structure.**  Span ids number spans in dispatch order
  (``s1``, ``s2``, ...), so two executions of the same plan produce
  structurally identical traces; trace ids come from
  :class:`TraceIdGenerator`, which yields a reproducible sequence under a
  seed (``REPRO_TRACE_SEED``) and random UUIDs otherwise.
"""

from __future__ import annotations

import os
import random
import threading
import time
import uuid
from collections import deque
from typing import Dict, List, Optional

from ..optimizer.plans import (
    AggregateNode,
    CachedViewNode,
    DistinctNode,
    ExtendNode,
    FilterNode,
    JoinNode,
    LeftJoinNode,
    LimitNode,
    PlanNode,
    ProjectNode,
    ScanNode,
    SingletonNode,
    SortNode,
    UnionNode,
)

#: environment variable holding the deterministic trace-id seed (tests /
#: reproducible serving runs); unset means random UUID trace ids.
TRACE_SEED_ENV = "REPRO_TRACE_SEED"

#: physical span name of every non-join plan-node type.  The mapping is
#: exhaustive by construction — ``span_name`` raises on unknown nodes and
#: ``tests/test_obs_trace.py`` asserts no PlanNode subclass is missing, so
#: no operator can ever execute untraced.
SPAN_NAMES: Dict[type, str] = {
    ScanNode: "scan",
    SingletonNode: "singleton",
    FilterNode: "filter",
    LeftJoinNode: "leftjoin",
    UnionNode: "union",
    ExtendNode: "extend",
    AggregateNode: "aggregate",
    SortNode: "sort",
    ProjectNode: "project",
    DistinctNode: "distinct",
    LimitNode: "limit",
    CachedViewNode: "view",
}

#: join spans are refined by the chosen physical method.
JOIN_SPAN_NAMES: Dict[str, str] = {
    JoinNode.HASH: "join.hash",
    JoinNode.NESTED_LOOP: "join.nestedloop",
    JoinNode.LOOKUP: "join.lookup",
}


def span_name(node: PlanNode) -> str:
    """The physical span name of one plan node (every node type has one)."""
    if isinstance(node, JoinNode):
        try:
            return JOIN_SPAN_NAMES[node.method]
        except KeyError:
            raise KeyError("join method %r has no span name" % (node.method,))
    name = SPAN_NAMES.get(type(node))
    if name is None:
        raise KeyError("plan node type %s has no span name" % type(node).__name__)
    return name


class Span:
    """One operator execution inside a trace.

    ``estimated_rows`` is the optimizer's cardinality estimate for the
    node; ``actual_rows`` the observed output (``None`` if the operator
    raised); ``rows_in`` the sum of the direct children's outputs;
    ``morsels`` how many morsel chunks the operator's parallel kernels
    processed (0 for operators that never fan out); ``batches`` the number
    of column-batch chunks processed (``max(1, morsels)`` for the vector
    executor, 1 for the tuple executor).  Times are wall-clock
    milliseconds from the monotonic clock.
    """

    __slots__ = (
        "span_id",
        "name",
        "node",
        "estimated_rows",
        "actual_rows",
        "rows_in",
        "morsels",
        "batches",
        "elapsed_ms",
        "children",
        "_started",
    )

    def __init__(self, span_id: str, name: str, node: PlanNode, started: float):
        self.span_id = span_id
        self.name = name
        self.node = node
        self.estimated_rows = float(node.estimated_cardinality)
        self.actual_rows: Optional[int] = None
        self.rows_in = 0
        self.morsels = 0
        self.batches = 0
        self.elapsed_ms = 0.0
        self.children: List["Span"] = []
        self._started = started

    @property
    def self_ms(self) -> float:
        """Time spent in this operator excluding its children."""
        return max(0.0, self.elapsed_ms - sum(child.elapsed_ms for child in self.children))

    def walk(self):
        """This span and every descendant, pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def as_dict(self) -> dict:
        """JSON-serialisable form (the ``/traces`` endpoint payload)."""
        return {
            "span_id": self.span_id,
            "name": self.name,
            "operator": self.node.describe(),
            "estimated_rows": self.estimated_rows,
            "actual_rows": self.actual_rows,
            "rows_in": self.rows_in,
            "morsels": self.morsels,
            "batches": self.batches,
            "elapsed_ms": self.elapsed_ms,
            "self_ms": self.self_ms,
            "children": [child.as_dict() for child in self.children],
        }

    def __repr__(self) -> str:
        return "Span(%s, est=%.0f, actual=%r, %.3fms)" % (
            self.name,
            self.estimated_rows,
            self.actual_rows,
            self.elapsed_ms,
        )


class Tracer:
    """Collects the span tree of one query execution.

    A tracer is single-use and single-threaded: both executors dispatch
    plan nodes on one thread per query (morsel workers run *inside* an
    operator, never across span boundaries), so enter/exit need no locks.
    """

    __slots__ = ("trace_id", "enabled", "root", "_stack", "_clock", "_counter")

    def __init__(self, trace_id: Optional[str] = None, clock=time.perf_counter):
        self.trace_id = trace_id if trace_id is not None else uuid.uuid4().hex
        self.enabled = True
        self.root: Optional[Span] = None
        self._stack: List[Span] = []
        self._clock = clock
        self._counter = 0

    # -- span lifecycle (called from the executors' dispatch loop) ---------------

    def enter(self, node: PlanNode) -> Span:
        """Open a span for ``node``; it becomes the current span."""
        self._counter += 1
        span = Span("s%d" % self._counter, span_name(node), node, self._clock())
        self._stack.append(span)
        return span

    def exit(self, span: Span, rows_out: Optional[int]) -> None:
        """Close the current span with its observed output cardinality.

        ``rows_out=None`` marks an operator that raised; the span still
        closes so the stack stays consistent and the partial trace remains
        inspectable.
        """
        span.elapsed_ms = (self._clock() - span._started) * 1000.0
        span.actual_rows = rows_out
        span.rows_in = sum(child.actual_rows or 0 for child in span.children)
        if span.batches == 0:
            span.batches = max(1, span.morsels)
        popped = self._stack.pop()
        if popped is not span:  # pragma: no cover - executor bug guard
            raise RuntimeError("span exit out of order: %r != %r" % (popped, span))
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.root = span

    def add_morsels(self, count: int) -> None:
        """Attribute ``count`` morsel chunks to the current span."""
        if self._stack:
            self._stack[-1].morsels += count

    # -- completion --------------------------------------------------------------

    def finish(
        self,
        result_rows: int = 0,
        runtime_ms: float = 0.0,
        executor: str = "",
        parallelism: int = 1,
        query: Optional[str] = None,
        result_cache: Optional[str] = None,
    ) -> "QueryTrace":
        """Seal the trace once execution (and profiling) is complete.

        ``result_cache`` records how the result cache treated this
        execution: ``"hit"`` (served from cache, only the decode ran),
        ``"miss"`` (executed and offered to the cache) or ``None`` (no
        cache consulted).
        """
        return QueryTrace(
            trace_id=self.trace_id,
            root=self.root,
            result_rows=result_rows,
            runtime_ms=runtime_ms,
            executor=executor,
            parallelism=parallelism,
            query=query,
            result_cache=result_cache,
        )


class NullTracer:
    """API-compatible disabled tracer (``enabled`` is False).

    Executors normalise it to ``None`` at the query boundary via
    :func:`coerce_tracer`, so its methods only run if someone calls them
    directly — and then they do nothing.
    """

    __slots__ = ()
    enabled = False
    trace_id = None
    root = None

    def enter(self, node: PlanNode) -> None:
        return None

    def exit(self, span, rows_out) -> None:
        return None

    def add_morsels(self, count: int) -> None:
        return None


def coerce_tracer(tracer) -> Optional[Tracer]:
    """Normalise any disabled tracer to ``None`` (the executor fast path)."""
    if tracer is None or not getattr(tracer, "enabled", False):
        return None
    return tracer


class QueryTrace:
    """The finished, immutable trace of one query execution."""

    __slots__ = (
        "trace_id",
        "root",
        "result_rows",
        "runtime_ms",
        "executor",
        "parallelism",
        "query",
        "result_cache",
        "created_at",
    )

    def __init__(
        self,
        trace_id: str,
        root: Optional[Span],
        result_rows: int,
        runtime_ms: float,
        executor: str,
        parallelism: int,
        query: Optional[str] = None,
        result_cache: Optional[str] = None,
    ):
        self.trace_id = trace_id
        self.root = root
        self.result_rows = result_rows
        self.runtime_ms = runtime_ms
        self.executor = executor
        self.parallelism = parallelism
        self.query = query
        #: "hit" / "miss" when a result cache was consulted, else None
        self.result_cache = result_cache
        self.created_at = time.time()

    @property
    def total_ms(self) -> float:
        """Wall-clock milliseconds of the traced execution (root span)."""
        return self.root.elapsed_ms if self.root is not None else 0.0

    def spans(self) -> List[Span]:
        """Every span, pre-order."""
        return list(self.root.walk()) if self.root is not None else []

    def as_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "created_at": self.created_at,
            "executor": self.executor,
            "parallelism": self.parallelism,
            "result_rows": self.result_rows,
            "runtime_ms": self.runtime_ms,
            "total_ms": self.total_ms,
            "query": self.query,
            "result_cache": self.result_cache,
            "root": self.root.as_dict() if self.root is not None else None,
        }

    def __repr__(self) -> str:
        return "QueryTrace(%s, spans=%d, rows=%d, %.3fms)" % (
            self.trace_id,
            len(self.spans()),
            self.result_rows,
            self.total_ms,
        )


class TraceIdGenerator:
    """Thread-safe trace-id source, deterministic under a seed.

    With ``seed`` (explicit, or via the ``REPRO_TRACE_SEED`` environment
    variable) ids form a reproducible hex sequence, so tests and recorded
    serving runs can assert on trace identity; without a seed ids are
    random UUIDs.
    """

    def __init__(self, seed: Optional[int] = None):
        if seed is None:
            seed = default_trace_seed()
        self._lock = threading.Lock()
        self._rng = random.Random(seed) if seed is not None else None

    def new_id(self) -> str:
        if self._rng is None:
            return uuid.uuid4().hex
        with self._lock:
            return "%032x" % self._rng.getrandbits(128)


def default_trace_seed() -> Optional[int]:
    """The ``REPRO_TRACE_SEED`` environment seed, if set and an integer."""
    raw = os.environ.get(TRACE_SEED_ENV)
    if raw is None or raw == "":
        return None
    try:
        return int(raw)
    except ValueError:
        return None


class TraceBuffer:
    """Bounded, thread-safe ring of the most recent query traces."""

    def __init__(self, capacity: int = 128):
        if capacity < 1:
            raise ValueError("trace buffer capacity must be >= 1, got %r" % (capacity,))
        self.capacity = capacity
        self._lock = threading.Lock()
        self._traces: deque = deque(maxlen=capacity)

    def append(self, trace: QueryTrace) -> None:
        with self._lock:
            self._traces.append(trace)

    def snapshot(self) -> List[QueryTrace]:
        """The retained traces, oldest first."""
        with self._lock:
            return list(self._traces)

    def clear(self) -> None:
        with self._lock:
            self._traces.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)

    def __repr__(self) -> str:
        return "TraceBuffer(%d/%d)" % (len(self), self.capacity)
