"""EXPLAIN ANALYZE rendering: estimated vs actual, per-operator time, drift.

:func:`render_analyze` turns one :class:`~repro.obs.trace.QueryTrace` into
the annotated plan tree ``repro.cli explain --analyze`` prints: every line
shows the logical operator, the physical operator the executor ran it
with, and ``est N rows, actual M rows, T ms`` (plus the morsel count for
parallel kernels).  A drift summary follows, built on the optimizer
literature's *q-error* — ``max(est, actual) / min(est, actual)`` with
both sides clamped to at least one row so empty operators stay finite —
naming the worst-estimated operators.  :func:`drift_summary` is the
programmatic form; :mod:`repro.adaptive` consumes exactly this signal to
correct future estimates and trigger re-optimization.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..optimizer.plans import PlanNode
from .trace import QueryTrace, Span

#: operators whose q-error at least this large count as "drifted" in the
#: summary (a factor of 2 is the usual optimizer-quality threshold).
DRIFT_THRESHOLD = 2.0


def q_error(estimated: float, actual: float) -> float:
    """The symmetric estimation error factor.

    Zero-row convention: both sides are clamped to one row before the
    ratio, so an empty operator that was estimated empty is a perfect 1.0
    and an operator estimated at N rows that came back empty has q-error N
    (symmetric with the opposite miss) — never a division by zero, never
    infinite drift.
    """
    low = max(min(estimated, actual), 1.0)
    high = max(estimated, actual, 1.0)
    return high / low


def drift_summary(trace: QueryTrace, threshold: float = DRIFT_THRESHOLD) -> dict:
    """Per-trace cardinality-drift statistics over every span.

    Returns operator count, mean/worst q-error, the worst span (name,
    estimate, actual) and how many operators drifted past ``threshold``.
    """
    spans = [span for span in trace.spans() if span.actual_rows is not None]
    if not spans:
        return {
            "operators": 0,
            "mean_q_error": 1.0,
            "worst_q_error": 1.0,
            "worst_operator": None,
            "drifted_operators": 0,
        }
    errors = [(q_error(span.estimated_rows, float(span.actual_rows)), span) for span in spans]
    worst_error, worst_span = max(errors, key=lambda pair: pair[0])
    return {
        "operators": len(spans),
        "mean_q_error": sum(error for error, _span in errors) / len(errors),
        "worst_q_error": worst_error,
        "worst_operator": {
            "name": worst_span.name,
            "operator": worst_span.node.describe(),
            "estimated_rows": worst_span.estimated_rows,
            "actual_rows": worst_span.actual_rows,
        },
        "drifted_operators": sum(1 for error, _span in errors if error >= threshold),
    }


def _render_span(
    span: Span,
    annotate: Optional[Callable[[PlanNode], str]],
    indent: int,
    lines: List[str],
) -> None:
    padding = "  " * indent
    label = span.node.describe()
    if annotate is not None:
        annotation = annotate(span.node)
        if annotation:
            label = "%s  · %s" % (label, annotation)
    estimate = "est %.0f rows" % span.estimated_rows
    raw = getattr(span.node, "raw_estimated_cardinality", None)
    if raw is not None and round(raw) != round(span.estimated_rows):
        # The adaptive corrections layer adjusted this node's estimate;
        # show what the statistics-only estimator believed.
        estimate += " (raw %.0f)" % raw
    stats = "%s, actual %d rows, %.3f ms" % (
        estimate,
        span.actual_rows if span.actual_rows is not None else -1,
        span.elapsed_ms,
    )
    if span.morsels > 1:
        stats += ", %d morsels" % span.morsels
    lines.append("%s%s  [%s]" % (padding, label, stats))
    for child in span.children:
        _render_span(child, annotate, indent + 1, lines)


def render_analyze(
    trace: QueryTrace,
    annotate: Optional[Callable[[PlanNode], str]] = None,
    threshold: float = DRIFT_THRESHOLD,
) -> str:
    """The full ``explain --analyze`` report for one trace."""
    lines: List[str] = []
    if trace.root is None:
        return "(no spans recorded)"
    _render_span(trace.root, annotate, 0, lines)
    summary = drift_summary(trace, threshold)
    lines.append("")
    execution_line = (
        "execution: %d rows in %.3f ms wall (%s executor, parallelism %d, "
        "simulated %.2f ms)  [trace %s]"
        % (
            trace.result_rows,
            trace.total_ms,
            trace.executor or "?",
            trace.parallelism,
            trace.runtime_ms,
            trace.trace_id,
        )
    )
    if trace.result_cache == "hit":
        execution_line += " (result cache hit)"
    if any(getattr(span.node, "reoptimized", False) for span in trace.spans()):
        # The adaptive re-optimizer swapped this cached plan in after drift
        # crossed the threshold (the flag sits on the swapped plan's root,
        # which may be wrapped in a pagination LimitNode here).
        execution_line += " (reoptimized)"
    lines.append(execution_line)
    worst = summary["worst_operator"]
    if worst is None:
        lines.append("cardinality drift: no operators recorded")
    else:
        lines.append(
            "cardinality drift: %d operators, mean q-error %.2fx, %d drifted "
            "beyond %.1fx" % (
                summary["operators"],
                summary["mean_q_error"],
                summary["drifted_operators"],
                threshold,
            )
        )
        lines.append(
            "  worst: %s — est %.0f rows, actual %d rows (q-error %.2fx)"
            % (
                worst["operator"],
                worst["estimated_rows"],
                worst["actual_rows"],
                summary["worst_q_error"],
            )
        )
    return "\n".join(lines)
