"""Structured JSON-lines slow-query logging.

One :class:`SlowQueryLog` guards one output (a path opened lazily in
append mode, or any file-like object) behind a lock; every query whose
wall-clock time reaches the threshold becomes a single JSON line::

    {"ts": ..., "trace_id": "...", "wall_ms": ..., "runtime_ms": ...,
     "rows": ..., "executor": "...", "query": "...", "plan": "..."}

A threshold of 0 logs every query (useful for tests and short captures);
``serve --slow-query-log PATH --slow-query-ms N`` wires it into the HTTP
endpoint.  Logging failures never fail the query — the log is best-effort
observability, not a durability channel.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Optional, TextIO

#: default wall-clock threshold (milliseconds) above which queries are logged.
DEFAULT_SLOW_MS = 500.0

#: logged query text is clipped to keep lines bounded.
MAX_QUERY_CHARS = 2000


class SlowQueryLog:
    """Append-only JSON-lines log of queries slower than a threshold."""

    def __init__(self, target, threshold_ms: float = DEFAULT_SLOW_MS):
        """``target`` is a filesystem path or an open text stream."""
        self.threshold_ms = float(threshold_ms)
        self._lock = threading.Lock()
        if hasattr(target, "write"):
            self._path: Optional[str] = None
            self._stream: Optional[TextIO] = target
        else:
            self._path = str(target)
            self._stream = None
        self.logged = 0

    @property
    def path(self) -> Optional[str]:
        return self._path

    def observe(
        self,
        wall_ms: float,
        query: Optional[str] = None,
        runtime_ms: Optional[float] = None,
        rows: Optional[int] = None,
        trace_id: Optional[str] = None,
        executor: Optional[str] = None,
        plan_signature: Optional[str] = None,
        error: Optional[str] = None,
        cache_hit: Optional[bool] = None,
        plan_cache_hit: Optional[bool] = None,
        reoptimized: Optional[bool] = None,
        mean_q_error: Optional[float] = None,
    ) -> bool:
        """Log one execution if it crossed the threshold; returns whether it did.

        ``cache_hit``/``plan_cache_hit`` distinguish hot-template hits
        (result served from the answer cache, plan from the plan cache)
        from genuinely cold runs when reading the log.  Adaptive sessions
        add ``reoptimized`` (this execution ran a drift-swapped plan) and
        ``mean_q_error`` (the query's current estimation-drift EWMA).
        """
        if wall_ms < self.threshold_ms:
            return False
        entry = {
            "ts": time.time(),
            "wall_ms": round(float(wall_ms), 3),
        }
        if trace_id is not None:
            entry["trace_id"] = trace_id
        if runtime_ms is not None:
            entry["runtime_ms"] = round(float(runtime_ms), 3)
        if rows is not None:
            entry["rows"] = int(rows)
        if executor is not None:
            entry["executor"] = executor
        if plan_signature is not None:
            entry["plan"] = plan_signature
        if cache_hit is not None:
            entry["cache_hit"] = bool(cache_hit)
        if plan_cache_hit is not None:
            entry["plan_cache_hit"] = bool(plan_cache_hit)
        if reoptimized is not None:
            entry["reoptimized"] = bool(reoptimized)
        if mean_q_error is not None:
            entry["mean_q_error"] = round(float(mean_q_error), 3)
        if error is not None:
            entry["error"] = error
        if query is not None:
            entry["query"] = query[:MAX_QUERY_CHARS]
        line = json.dumps(entry, sort_keys=True)
        try:
            with self._lock:
                stream = self._ensure_stream()
                stream.write(line + "\n")
                stream.flush()
                self.logged += 1
        except OSError:  # pragma: no cover - disk-full / closed-stream guard
            return False
        return True

    def _ensure_stream(self) -> TextIO:
        if self._stream is None:
            self._stream = open(self._path, "a", encoding="utf-8")
        return self._stream

    def close(self) -> None:
        with self._lock:
            if self._path is not None and self._stream is not None:
                self._stream.close()
                self._stream = None

    def __enter__(self) -> "SlowQueryLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        target = self._path if self._path is not None else "<stream>"
        return "SlowQueryLog(%s, threshold=%.0fms, logged=%d)" % (
            target,
            self.threshold_ms,
            self.logged,
        )
