"""Store statistics for cardinality estimation.

The optimizer needs selectivity information that reflects the *actual* data
distribution — the whole point of the paper is that real/generated RDF data
is skewed and correlated, so naive uniform assumptions hide exactly the
effects we want to reproduce.  :class:`StoreStatistics` therefore collects:

* total triple count and per-predicate triple counts,
* distinct subject / object counts per predicate,
* exact frequency histograms for the most frequent (predicate, object) and
  (predicate, subject) pairs, backed by exact index prefix counts for the
  long tail,
* characteristic sets (the set of predicates attached to a subject), used to
  estimate star-join cardinalities [Neumann & Moerkotte, ICDE 2011].
"""

from __future__ import annotations

import threading
from collections import Counter
from typing import Dict, FrozenSet, Optional, Tuple

import numpy as np

from ..rdf.terms import Variable
from ..rdf.triples import TriplePattern
from .triple_store import TripleStore


class PredicateStatistics:
    """Per-predicate summary counts."""

    __slots__ = ("predicate_id", "triple_count", "distinct_subjects", "distinct_objects")

    def __init__(
        self,
        predicate_id: int,
        triple_count: int,
        distinct_subjects: int,
        distinct_objects: int,
    ):
        self.predicate_id = predicate_id
        self.triple_count = triple_count
        self.distinct_subjects = distinct_subjects
        self.distinct_objects = distinct_objects

    def average_objects_per_subject(self) -> float:
        if self.distinct_subjects == 0:
            return 0.0
        return self.triple_count / self.distinct_subjects

    def average_subjects_per_object(self) -> float:
        if self.distinct_objects == 0:
            return 0.0
        return self.triple_count / self.distinct_objects

    def __repr__(self) -> str:
        return (
            "PredicateStatistics(p=%d, triples=%d, subjects=%d, objects=%d)"
            % (self.predicate_id, self.triple_count, self.distinct_subjects, self.distinct_objects)
        )


class StoreStatistics:
    """Statistics snapshot of a :class:`TripleStore`.

    The snapshot remembers the store's :attr:`~TripleStore.data_version` it
    was collected at; any later mutation (staged loads, :meth:`~TripleStore.insert`,
    :meth:`~TripleStore.remove`) makes the next statistics access re-collect
    automatically, so estimates never silently desync from the data.
    """

    def __init__(self, store: TripleStore):
        self.store = store
        self.total_triples = 0
        self.predicate_stats: Dict[int, PredicateStatistics] = {}
        self.characteristic_sets: Counter = Counter()
        #: how many full O(N) collection scans have actually run (racing
        #: refreshers that found a fresh snapshot inside the lock skip the
        #: scan and do not count).
        self.collections = 0
        self._collected = False
        self._version: Optional[int] = None
        self._collect_lock = threading.Lock()
        #: memoized characteristic_set_count results for the current
        #: data_version; replaced whole by every collection, so a store
        #: mutation invalidates the memo together with the summaries.
        self._superset_counts: Dict[FrozenSet[int], int] = {}

    # -- collection ---------------------------------------------------------

    def collect(self) -> "StoreStatistics":
        """Scan the store once and build all summaries.

        Safe for concurrent readers: the summaries are built into fresh
        containers and swapped in whole, so a thread reading the previous
        snapshot mid-refresh still sees a consistent one.  The lock keeps
        racing refreshers from collecting twice: the data_version is
        re-checked *inside* the lock, so the loser of the race finds the
        winner's fresh snapshot and returns without scanning.
        """
        with self._collect_lock:
            store = self.store
            store.finalise()
            version = store.data_version
            if self._collected and self._version == version:
                return self
            self.collections += 1
            predicate_stats: Dict[int, PredicateStatistics] = {}
            characteristic_sets: Counter = Counter()

            pso = store.index("pso")
            pos = store.index("pos")
            predicates, counts = np.unique(pso.columns()[0], return_counts=True)
            for predicate_id, triple_count in zip(predicates.tolist(), counts.tolist()):
                predicate_stats[predicate_id] = PredicateStatistics(
                    predicate_id=predicate_id,
                    triple_count=triple_count,
                    distinct_subjects=pso.distinct_prefix_values([predicate_id]),
                    distinct_objects=pos.distinct_prefix_values([predicate_id]),
                )

            # Characteristic sets: predicates per subject.  The SPO columns
            # are sorted by (s, p, o), so deduplicating consecutive (s, p)
            # pairs and splitting on subject boundaries yields each
            # subject's predicate set.
            spo = store.index("spo")
            s_col, p_col = spo.columns()[0], spo.columns()[1]
            if s_col.shape[0]:
                keep = np.empty(s_col.shape[0], dtype=bool)
                keep[0] = True
                keep[1:] = (s_col[1:] != s_col[:-1]) | (p_col[1:] != p_col[:-1])
                subjects, predicates_of = s_col[keep], p_col[keep]
                boundaries = np.flatnonzero(subjects[1:] != subjects[:-1]) + 1
                for piece in np.split(predicates_of, boundaries):
                    characteristic_sets[frozenset(piece.tolist())] += 1

            self.total_triples = len(store)
            self.predicate_stats = predicate_stats
            self.characteristic_sets = characteristic_sets
            self._superset_counts = {}
            self._collected = True
            self._version = version
        return self

    def _require_collected(self) -> None:
        if not self._collected or self._version != self.store.data_version:
            self.collect()

    # -- basic lookups --------------------------------------------------------

    def predicate(self, predicate_id: int) -> Optional[PredicateStatistics]:
        self._require_collected()
        return self.predicate_stats.get(predicate_id)

    def predicate_count(self, predicate_id: int) -> int:
        stats = self.predicate(predicate_id)
        return stats.triple_count if stats else 0

    def distinct_subjects_total(self) -> int:
        self._require_collected()
        return self.store.distinct_subjects()

    def distinct_objects_total(self) -> int:
        self._require_collected()
        return self.store.distinct_objects()

    # -- pattern cardinalities --------------------------------------------------

    def pattern_cardinality(self, pattern: TriplePattern) -> int:
        """Exact cardinality of a single triple pattern.

        The permutation indexes make exact prefix counts as cheap as a pair
        of binary searches, so single-pattern estimates are never wrong —
        estimation error only enters through join estimates, exactly as in
        systems with exact dictionary statistics.
        """
        self._require_collected()
        return self.store.count_pattern(pattern)

    def characteristic_set_count(self, predicates: FrozenSet[int]) -> int:
        """Number of subjects whose predicate set is a superset of ``predicates``.

        Used to estimate the number of distinct subjects surviving a star
        join over the given predicates.  The O(|csets|) superset scan is
        memoized per (predicate set, data_version): the memo dict is
        replaced whole by :meth:`collect`, so any store mutation (which
        bumps the data_version and triggers a re-collect) invalidates it.
        """
        self._require_collected()
        memo = self._superset_counts
        cached = memo.get(predicates)
        if cached is None:
            cached = 0
            for cset, count in self.characteristic_sets.items():
                if predicates <= cset:
                    cached += count
            memo[predicates] = cached
        return cached

    # -- persistence (snapshot subsystem) ----------------------------------------

    def as_payload(self) -> Dict:
        """JSON-serialisable snapshot of the collected summaries.

        Keyed by the store's ``data_version`` so a loader can tell whether
        the persisted statistics still describe the mapped triples.
        """
        self._require_collected()
        return {
            "data_version": self._version,
            "total_triples": self.total_triples,
            "predicates": [
                [
                    self.predicate_stats[predicate_id].predicate_id,
                    self.predicate_stats[predicate_id].triple_count,
                    self.predicate_stats[predicate_id].distinct_subjects,
                    self.predicate_stats[predicate_id].distinct_objects,
                ]
                for predicate_id in sorted(self.predicate_stats)
            ],
            "characteristic_sets": [
                [sorted(cset), count]
                for cset, count in sorted(
                    self.characteristic_sets.items(), key=lambda item: sorted(item[0])
                )
            ],
        }

    @classmethod
    def from_persisted(cls, store: TripleStore, payload: Dict) -> "StoreStatistics":
        """Rebuild a warm statistics snapshot from :meth:`as_payload` output.

        No scan runs: the summaries are adopted as collected at the
        payload's ``data_version``.  A later store mutation re-collects
        automatically, exactly like a live snapshot.
        """
        statistics = cls(store)
        statistics.total_triples = int(payload["total_triples"])
        statistics.predicate_stats = {
            int(predicate_id): PredicateStatistics(
                predicate_id=int(predicate_id),
                triple_count=int(triple_count),
                distinct_subjects=int(distinct_subjects),
                distinct_objects=int(distinct_objects),
            )
            for predicate_id, triple_count, distinct_subjects, distinct_objects in payload[
                "predicates"
            ]
        }
        statistics.characteristic_sets = Counter(
            {
                frozenset(int(predicate_id) for predicate_id in cset): int(count)
                for cset, count in payload["characteristic_sets"]
            }
        )
        statistics._collected = True
        statistics._version = int(payload["data_version"])
        return statistics

    # -- convenience for tests / reporting --------------------------------------

    def summary(self) -> Dict[str, int]:
        self._require_collected()
        return {
            "triples": self.total_triples,
            "predicates": len(self.predicate_stats),
            "subjects": self.distinct_subjects_total(),
            "objects": self.distinct_objects_total(),
            "characteristic_sets": len(self.characteristic_sets),
        }


def pattern_bound_mask(pattern: TriplePattern) -> Tuple[bool, bool, bool]:
    """Return which positions of a pattern are constants (helper for tests)."""
    return tuple(not isinstance(term, Variable) for term in pattern)
