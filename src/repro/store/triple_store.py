"""The triple store: dictionary encoding plus six permutation indexes.

The store is the substrate every other layer builds on: the executor scans
it, the cardinality estimator asks it for prefix counts, the data generators
bulk-load into it.  It deliberately stays storage-model agnostic (the
paper's ``Cout`` is defined to be oblivious to the storage model): lookups
are expressed in terms of which triple components are bound.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from ..rdf.dictionary import TermDictionary
from ..rdf.terms import Term, Variable
from ..rdf.triples import Triple, TriplePattern
from .indexes import PermutationIndex

IdTriple = Tuple[int, int, int]

#: Which index serves which bound-positions mask (s, p, o).
#: The chosen index has the bound components as a prefix of its ordering.
_INDEX_FOR_MASK = {
    (False, False, False): "spo",
    (True, False, False): "spo",
    (False, True, False): "pos",
    (False, False, True): "osp",
    (True, True, False): "spo",
    (True, False, True): "sop",
    (False, True, True): "pos",
    (True, True, True): "spo",
}


class TripleStore:
    """Dictionary-encoded triple store with six sorted permutation indexes."""

    def __init__(self):
        self.dictionary = TermDictionary()
        self._indexes: Dict[str, PermutationIndex] = {
            name: PermutationIndex(name) for name in ("spo", "sop", "pso", "pos", "osp", "ops")
        }
        self._size = 0
        self._pending: List[IdTriple] = []
        self._loaded = False
        self._version = 0

    def __len__(self) -> int:
        return self._size + len(self._pending)

    @property
    def data_version(self) -> int:
        """Monotone counter bumped by every mutation of the triple set.

        Staged-but-unloaded triples already count as a pending mutation, so
        statistics consumers (see :class:`~repro.store.statistics.StoreStatistics`)
        can detect staleness *before* the lazy rebuild runs.
        """
        return self._version + (1 if self._pending else 0)

    # -- loading -----------------------------------------------------------

    def add(self, triple: Triple) -> None:
        """Stage a triple for loading.

        Triples are buffered and the indexes rebuilt lazily on first lookup,
        which makes bulk loading linear instead of quadratic.
        """
        encoded = (
            self.dictionary.encode(triple.subject),
            self.dictionary.encode(triple.predicate),
            self.dictionary.encode(triple.object),
        )
        self._pending.append(encoded)

    def add_many(self, triples: Iterable[Triple]) -> None:
        for triple in triples:
            self.add(triple)

    def _ensure_loaded(self) -> None:
        if not self._pending and self._loaded:
            return
        parts: List[np.ndarray] = []
        if self._loaded and self._size:
            # The SPO index's permuted key order *is* the canonical order.
            parts.append(np.stack(self._indexes["spo"].columns(), axis=1))
        if self._pending:
            parts.append(np.asarray(self._pending, dtype=np.int64).reshape(-1, 3))
        if parts:
            merged = np.unique(np.concatenate(parts, axis=0), axis=0)
        else:
            merged = np.empty((0, 3), dtype=np.int64)
        for index in self._indexes.values():
            index.bulk_load(merged)
        self._size = int(merged.shape[0])
        self._pending = []
        self._loaded = True
        self._version += 1

    def finalise(self) -> None:
        """Force any staged triples into the indexes."""
        self._ensure_loaded()

    # -- persistence ---------------------------------------------------------

    def save(self, path: str, statistics=None, fingerprint=None) -> dict:
        """Persist the finalised store (and optional statistics) to ``path``.

        See :mod:`repro.store.snapshot` for the on-disk format.  Returns
        the written header dict.
        """
        from .snapshot import save_snapshot

        return save_snapshot(path, self, statistics=statistics, fingerprint=fingerprint)

    @classmethod
    def load(cls, path: str) -> "TripleStore":
        """Load a snapshot zero-copy: memory-mapped indexes, lazy dictionary.

        The loaded store is bit-identical to the one that was saved —
        same dictionary ids, same index order, same ``data_version`` — so
        every query answers exactly as it would against the original.
        Raises :class:`repro.store.snapshot.SnapshotError` subclasses on
        format/integrity problems, never returns a partially loaded store.
        Use :func:`repro.store.snapshot.load_snapshot` instead when the
        persisted statistics are wanted too.
        """
        from .snapshot import load_snapshot

        return load_snapshot(path).store

    # -- point mutations ----------------------------------------------------

    def insert(self, triple: Triple) -> bool:
        """Insert one triple directly into the live indexes.

        Returns True when the triple was new.  Bumps :attr:`data_version`
        so statistics snapshots refresh instead of silently desyncing.
        """
        self._ensure_loaded()
        encoded = (
            self.dictionary.encode(triple.subject),
            self.dictionary.encode(triple.predicate),
            self.dictionary.encode(triple.object),
        )
        if self._indexes["spo"].contains(encoded):
            return False
        for index in self._indexes.values():
            index.insert(encoded)
        self._size += 1
        self._version += 1
        return True

    def remove(self, triple: Triple) -> bool:
        """Remove one triple from the live indexes; True when it was present.

        Bumps :attr:`data_version` like :meth:`insert`.
        """
        self._ensure_loaded()
        ids = tuple(self.dictionary.lookup(term) for term in triple)
        if any(term_id is None for term_id in ids):
            return False
        if not self._indexes["spo"].contains(ids):  # type: ignore[arg-type]
            return False
        for index in self._indexes.values():
            index.remove(ids)  # type: ignore[arg-type]
        self._size -= 1
        self._version += 1
        return True

    # -- term helpers --------------------------------------------------------

    def encode_term(self, term: Term) -> Optional[int]:
        """Return the id of a concrete term or ``None`` if it is unknown."""
        return self.dictionary.lookup(term)

    def decode_id(self, term_id: int) -> Term:
        return self.dictionary.decode(term_id)

    # -- pattern access -------------------------------------------------------

    def _pattern_to_prefix(self, pattern: TriplePattern) -> Optional[Tuple[str, List[int]]]:
        """Translate a pattern into (index name, bound-prefix ids).

        Returns ``None`` when a constant in the pattern does not occur in the
        data at all, which means the pattern can produce no matches.
        """
        mask = pattern.bound_positions()
        index_name = _INDEX_FOR_MASK[mask]
        positions = {"s": 0, "p": 1, "o": 2}
        components = (pattern.subject, pattern.predicate, pattern.object)
        prefix: List[int] = []
        for ch in index_name:
            term = components[positions[ch]]
            if isinstance(term, Variable):
                break
            term_id = self.dictionary.lookup(term)
            if term_id is None:
                return None
            prefix.append(term_id)
        return index_name, prefix

    def count_pattern(self, pattern: TriplePattern) -> int:
        """Exact number of triples matching the constant positions of ``pattern``.

        Repeated variables (e.g. ``?x p ?x``) are not post-filtered here; the
        executor applies that filter.  The count is therefore an upper bound
        in that corner case and exact otherwise.
        """
        self._ensure_loaded()
        resolved = self._pattern_to_prefix(pattern)
        if resolved is None:
            return 0
        index_name, prefix = resolved
        return self._indexes[index_name].count_prefix(prefix)

    def scan_pattern(self, pattern: TriplePattern) -> Iterator[Tuple[int, int, int]]:
        """Yield id triples matching the constant positions of ``pattern``.

        Results honour repeated variables (``?x p ?x`` only yields triples
        with equal subject and object).
        """
        self._ensure_loaded()
        resolved = self._pattern_to_prefix(pattern)
        if resolved is None:
            return
        index_name, prefix = resolved
        subject, predicate, object_ = pattern.as_tuple()
        same_so = isinstance(subject, Variable) and subject == object_
        same_sp = isinstance(subject, Variable) and subject == predicate
        same_po = isinstance(predicate, Variable) and predicate == object_
        for id_triple in self._indexes[index_name].scan_prefix(prefix):
            s, p, o = id_triple
            if same_so and s != o:
                continue
            if same_sp and s != p:
                continue
            if same_po and p != o:
                continue
            yield id_triple

    def scan_pattern_arrays(
        self, pattern: TriplePattern
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Canonical (s, p, o) id arrays matching ``pattern``.

        The columnar counterpart of :meth:`scan_pattern`: repeated variables
        are honoured, unknown constants yield empty arrays, and the returned
        arrays are views into the index columns whenever no repeated-variable
        mask applies (treat them as read-only).
        """
        self._ensure_loaded()
        resolved = self._pattern_to_prefix(pattern)
        if resolved is None:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty, empty
        index_name, prefix = resolved
        index = self._indexes[index_name]
        low, high = index.prefix_range(prefix)
        s, p, o = index.spo_columns(low, high)
        return self.filter_repeated_variables(pattern, s, p, o)

    @staticmethod
    def pattern_has_repeated_variables(pattern: TriplePattern) -> bool:
        """True when the pattern repeats a variable (``?x p ?x``)."""
        subject, predicate, object_ = pattern.as_tuple()
        return (
            (isinstance(subject, Variable) and (subject == predicate or subject == object_))
            or (isinstance(predicate, Variable) and predicate == object_)
        )

    def scan_pattern_morsels(
        self, pattern: TriplePattern, morsel_size: int
    ) -> List[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Split the index range matching ``pattern`` into morsel views.

        Each entry is an (s, p, o) triple of column views covering up to
        ``morsel_size`` rows; concatenating the morsels in order equals the
        full :meth:`scan_pattern_arrays` range *before* repeated-variable
        filtering (apply :meth:`filter_repeated_variables` per morsel).
        Parallel executors fan the morsels out to a worker pool.
        """
        self._ensure_loaded()
        resolved = self._pattern_to_prefix(pattern)
        if resolved is None:
            return []
        index_name, prefix = resolved
        index = self._indexes[index_name]
        low, high = index.prefix_range(prefix)
        return [
            index.spo_columns(morsel_low, morsel_high)
            for morsel_low, morsel_high in index.morsel_ranges(low, high, morsel_size)
        ]

    @staticmethod
    def filter_repeated_variables(
        pattern: TriplePattern, s: np.ndarray, p: np.ndarray, o: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Compact (s, p, o) columns to rows honouring repeated variables."""
        subject, predicate, object_ = pattern.as_tuple()
        mask: Optional[np.ndarray] = None
        if isinstance(subject, Variable) and subject == object_:
            mask = s == o
        if isinstance(subject, Variable) and subject == predicate:
            same = s == p
            mask = same if mask is None else mask & same
        if isinstance(predicate, Variable) and predicate == object_:
            same = p == o
            mask = same if mask is None else mask & same
        if mask is not None:
            s, p, o = s[mask], p[mask], o[mask]
        return s, p, o

    def index_for_mask(self, mask: Tuple[bool, bool, bool]) -> PermutationIndex:
        """The permutation index serving a bound-positions (s, p, o) mask."""
        self._ensure_loaded()
        return self._indexes[_INDEX_FOR_MASK[mask]]

    def contains(self, triple: Triple) -> bool:
        self._ensure_loaded()
        ids = tuple(self.dictionary.lookup(term) for term in triple)
        if any(term_id is None for term_id in ids):
            return False
        return self._indexes["spo"].contains(ids)  # type: ignore[arg-type]

    def triples(self, pattern: Optional[TriplePattern] = None) -> Iterator[Triple]:
        """Yield decoded :class:`Triple` objects matching ``pattern`` (or all)."""
        self._ensure_loaded()
        if pattern is None:
            pattern = TriplePattern(Variable("s"), Variable("p"), Variable("o"))
        for s, p, o in self.scan_pattern(pattern):
            yield Triple(self.decode_id(s), self.decode_id(p), self.decode_id(o))

    # -- statistics access ----------------------------------------------------

    def index(self, name: str) -> PermutationIndex:
        """Return a raw permutation index (statistics and tests use this)."""
        self._ensure_loaded()
        return self._indexes[name]

    def distinct_subjects(self, predicate_id: Optional[int] = None) -> int:
        self._ensure_loaded()
        if predicate_id is None:
            return self._indexes["spo"].distinct_prefix_values([])
        return self._indexes["pso"].distinct_prefix_values([predicate_id])

    def distinct_objects(self, predicate_id: Optional[int] = None) -> int:
        self._ensure_loaded()
        if predicate_id is None:
            return self._indexes["osp"].distinct_prefix_values([])
        return self._indexes["pos"].distinct_prefix_values([predicate_id])

    def distinct_predicates(self) -> int:
        self._ensure_loaded()
        return self._indexes["pso"].distinct_prefix_values([])
