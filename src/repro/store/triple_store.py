"""The triple store: dictionary encoding plus six permutation indexes.

The store is the substrate every other layer builds on: the executor scans
it, the cardinality estimator asks it for prefix counts, the data generators
bulk-load into it.  It deliberately stays storage-model agnostic (the
paper's ``Cout`` is defined to be oblivious to the storage model): lookups
are expressed in terms of which triple components are bound.

Concurrency and mutation model (MVCC snapshot isolation)
--------------------------------------------------------

The store is an **immutable base plus a delta overlay** (see
:mod:`repro.store.delta`):

* the base — six sorted numpy column triples, possibly mmap-adopted from a
  snapshot file — is never written in place;
* every committed mutation (:meth:`apply_update`, :meth:`insert`,
  :meth:`remove`) runs under one :attr:`writer_lock` and publishes a fresh
  immutable :class:`~repro.store.delta.DeltaState` with a bumped
  :attr:`data_version`;
* readers call :meth:`reader` once at query start and get a
  :class:`StoreReader` pinned to the ``(base, delta-epoch)`` pair current
  at that instant — later commits are invisible to it, so an open cursor
  or a streaming HTTP response never observes a torn or shifted result;
* :meth:`compact` folds the delta into six fresh base indexes and swaps
  them in atomically; visible data is unchanged, so ``data_version`` stays
  put and every version-keyed cache remains valid.  Updates auto-compact
  once the overlay exceeds :attr:`compact_threshold` tracked triples.

Direct calls against the store (``scan_pattern`` etc. without an explicit
reader) pin per call, which keeps single-shot callers and the statistics
collector correct without code changes.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

import numpy as np

from ..rdf.dictionary import TermDictionary
from ..rdf.terms import Term, Variable
from ..rdf.triples import Triple, TriplePattern
from .delta import DeltaState
from .indexes import PermutationIndex

IdTriple = Tuple[int, int, int]

#: Which index serves which bound-positions mask (s, p, o).
#: The chosen index has the bound components as a prefix of its ordering.
_INDEX_FOR_MASK = {
    (False, False, False): "spo",
    (True, False, False): "spo",
    (False, True, False): "pos",
    (False, False, True): "osp",
    (True, True, False): "spo",
    (True, False, True): "sop",
    (False, True, True): "pos",
    (True, True, True): "spo",
}

#: Tracked delta triples (added + removed) beyond which a committing update
#: folds the overlay into a fresh base before returning.
DEFAULT_COMPACT_THRESHOLD = 8192


class SnapshotReadOnlyError(RuntimeError):
    """A write path tried to modify mmap-adopted base columns in place.

    The supported write paths (:meth:`TripleStore.apply_update` and the
    point mutations built on it) never raise this: they copy-on-write into
    the delta overlay instead of touching the mapped file view.
    """


class ApplyResult:
    """Outcome of one committed :meth:`TripleStore.apply_update` call."""

    __slots__ = (
        "inserted",
        "deleted",
        "data_version",
        "delta_triples",
        "compacted",
        "compaction_seconds",
    )

    def __init__(
        self,
        inserted: int,
        deleted: int,
        data_version: int,
        delta_triples: int,
        compacted: bool = False,
        compaction_seconds: Optional[float] = None,
    ):
        self.inserted = inserted
        self.deleted = deleted
        self.data_version = data_version
        self.delta_triples = delta_triples
        self.compacted = compacted
        self.compaction_seconds = compaction_seconds

    @property
    def changed(self) -> bool:
        return bool(self.inserted or self.deleted)

    def __repr__(self) -> str:
        return "ApplyResult(inserted=%d, deleted=%d, version=%d)" % (
            self.inserted,
            self.deleted,
            self.data_version,
        )


class _StoreState:
    """One immutable published state: base indexes + size + delta + version."""

    __slots__ = ("indexes", "base_size", "delta", "version")

    def __init__(
        self,
        indexes: Dict[str, PermutationIndex],
        base_size: int,
        delta: DeltaState,
        version: int,
    ):
        self.indexes = indexes
        self.base_size = base_size
        self.delta = delta
        self.version = version

    def index(self, name: str) -> PermutationIndex:
        """The merged (base ∘ delta) permutation index for ``name``."""
        return self.delta.merged_index(self.indexes[name])

    @property
    def size(self) -> int:
        return self.base_size + self.delta.net_growth()


class StoreReader:
    """A read view pinned to one ``(base, delta-epoch)`` store state.

    Exposes the full read API of :class:`TripleStore`; every answer is
    consistent with the single instant the reader was created at, no
    matter what commits afterwards.  The dictionary is shared with the
    store — it is append-only (ids are never reassigned or dropped, even
    by deletes), so decoding stays valid for any pinned state.
    """

    __slots__ = ("dictionary", "_state")

    def __init__(self, dictionary: TermDictionary, state: _StoreState):
        self.dictionary = dictionary
        self._state = state

    def __len__(self) -> int:
        return self._state.size

    @property
    def data_version(self) -> int:
        """The store ``data_version`` this reader is pinned to."""
        return self._state.version

    @property
    def delta_epoch(self) -> int:
        return self._state.delta.epoch

    # -- term helpers --------------------------------------------------------

    def encode_term(self, term: Term) -> Optional[int]:
        """Return the id of a concrete term or ``None`` if it is unknown."""
        return self.dictionary.lookup(term)

    def decode_id(self, term_id: int) -> Term:
        return self.dictionary.decode(term_id)

    # -- pattern access -------------------------------------------------------

    def _pattern_to_prefix(self, pattern: TriplePattern) -> Optional[Tuple[str, List[int]]]:
        """Translate a pattern into (index name, bound-prefix ids).

        Returns ``None`` when a constant in the pattern does not occur in the
        data at all, which means the pattern can produce no matches.
        """
        mask = pattern.bound_positions()
        index_name = _INDEX_FOR_MASK[mask]
        positions = {"s": 0, "p": 1, "o": 2}
        components = (pattern.subject, pattern.predicate, pattern.object)
        prefix: List[int] = []
        for ch in index_name:
            term = components[positions[ch]]
            if isinstance(term, Variable):
                break
            term_id = self.dictionary.lookup(term)
            if term_id is None:
                return None
            prefix.append(term_id)
        return index_name, prefix

    def count_pattern(self, pattern: TriplePattern) -> int:
        """Exact number of triples matching the constant positions of ``pattern``.

        Repeated variables (e.g. ``?x p ?x``) are not post-filtered here; the
        executor applies that filter.  The count is therefore an upper bound
        in that corner case and exact otherwise.
        """
        resolved = self._pattern_to_prefix(pattern)
        if resolved is None:
            return 0
        index_name, prefix = resolved
        return self._state.index(index_name).count_prefix(prefix)

    def scan_pattern(self, pattern: TriplePattern) -> Iterator[IdTriple]:
        """Yield id triples matching the constant positions of ``pattern``.

        Results honour repeated variables (``?x p ?x`` only yields triples
        with equal subject and object).
        """
        resolved = self._pattern_to_prefix(pattern)
        if resolved is None:
            return
        index_name, prefix = resolved
        subject, predicate, object_ = pattern.as_tuple()
        same_so = isinstance(subject, Variable) and subject == object_
        same_sp = isinstance(subject, Variable) and subject == predicate
        same_po = isinstance(predicate, Variable) and predicate == object_
        for id_triple in self._state.index(index_name).scan_prefix(prefix):
            s, p, o = id_triple
            if same_so and s != o:
                continue
            if same_sp and s != p:
                continue
            if same_po and p != o:
                continue
            yield id_triple

    def scan_pattern_arrays(
        self, pattern: TriplePattern
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Canonical (s, p, o) id arrays matching ``pattern``.

        The columnar counterpart of :meth:`scan_pattern`: repeated variables
        are honoured, unknown constants yield empty arrays, and the returned
        arrays are views into the index columns whenever no repeated-variable
        mask applies (treat them as read-only).
        """
        resolved = self._pattern_to_prefix(pattern)
        if resolved is None:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty, empty
        index_name, prefix = resolved
        index = self._state.index(index_name)
        low, high = index.prefix_range(prefix)
        s, p, o = index.spo_columns(low, high)
        return filter_repeated_variables(pattern, s, p, o)

    def scan_pattern_morsels(
        self, pattern: TriplePattern, morsel_size: int
    ) -> List[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Split the index range matching ``pattern`` into morsel views.

        Each entry is an (s, p, o) triple of column views covering up to
        ``morsel_size`` rows; concatenating the morsels in order equals the
        full :meth:`scan_pattern_arrays` range *before* repeated-variable
        filtering (apply :meth:`filter_repeated_variables` per morsel).
        Parallel executors fan the morsels out to a worker pool.
        """
        resolved = self._pattern_to_prefix(pattern)
        if resolved is None:
            return []
        index_name, prefix = resolved
        index = self._state.index(index_name)
        low, high = index.prefix_range(prefix)
        return [
            index.spo_columns(morsel_low, morsel_high)
            for morsel_low, morsel_high in index.morsel_ranges(low, high, morsel_size)
        ]

    @staticmethod
    def filter_repeated_variables(
        pattern: TriplePattern, s: np.ndarray, p: np.ndarray, o: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        return filter_repeated_variables(pattern, s, p, o)

    @staticmethod
    def pattern_has_repeated_variables(pattern: TriplePattern) -> bool:
        return pattern_has_repeated_variables(pattern)

    def index_for_mask(self, mask: Tuple[bool, bool, bool]) -> PermutationIndex:
        """The (merged) permutation index serving a bound-positions mask."""
        return self._state.index(_INDEX_FOR_MASK[mask])

    def index(self, name: str) -> PermutationIndex:
        """The (merged) permutation index named ``name``."""
        return self._state.index(name)

    def contains(self, triple: Triple) -> bool:
        ids = tuple(self.dictionary.lookup(term) for term in triple)
        if any(term_id is None for term_id in ids):
            return False
        return self.contains_ids(ids)  # type: ignore[arg-type]

    def contains_ids(self, ids: IdTriple) -> bool:
        delta = self._state.delta
        if ids in delta.added:
            return True
        if ids in delta.removed:
            return False
        return self._state.indexes["spo"].contains(ids)

    def triples(self, pattern: Optional[TriplePattern] = None) -> Iterator[Triple]:
        """Yield decoded :class:`Triple` objects matching ``pattern`` (or all)."""
        if pattern is None:
            pattern = TriplePattern(Variable("s"), Variable("p"), Variable("o"))
        for s, p, o in self.scan_pattern(pattern):
            yield Triple(self.decode_id(s), self.decode_id(p), self.decode_id(o))

    # -- statistics access ----------------------------------------------------

    def distinct_subjects(self, predicate_id: Optional[int] = None) -> int:
        if predicate_id is None:
            return self._state.index("spo").distinct_prefix_values([])
        return self._state.index("pso").distinct_prefix_values([predicate_id])

    def distinct_objects(self, predicate_id: Optional[int] = None) -> int:
        if predicate_id is None:
            return self._state.index("osp").distinct_prefix_values([])
        return self._state.index("pos").distinct_prefix_values([predicate_id])

    def distinct_predicates(self) -> int:
        return self._state.index("pso").distinct_prefix_values([])

    def __repr__(self) -> str:
        return "StoreReader(version=%d, epoch=%d, triples=%d)" % (
            self.data_version,
            self.delta_epoch,
            len(self),
        )


def filter_repeated_variables(
    pattern: TriplePattern, s: np.ndarray, p: np.ndarray, o: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Compact (s, p, o) columns to rows honouring repeated variables."""
    subject, predicate, object_ = pattern.as_tuple()
    mask: Optional[np.ndarray] = None
    if isinstance(subject, Variable) and subject == object_:
        mask = s == o
    if isinstance(subject, Variable) and subject == predicate:
        same = s == p
        mask = same if mask is None else mask & same
    if isinstance(predicate, Variable) and predicate == object_:
        same = p == o
        mask = same if mask is None else mask & same
    if mask is not None:
        s, p, o = s[mask], p[mask], o[mask]
    return s, p, o


def pattern_has_repeated_variables(pattern: TriplePattern) -> bool:
    """True when the pattern repeats a variable (``?x p ?x``)."""
    subject, predicate, object_ = pattern.as_tuple()
    return (
        (isinstance(subject, Variable) and (subject == predicate or subject == object_))
        or (isinstance(predicate, Variable) and predicate == object_)
    )


class TripleStore:
    """Dictionary-encoded triple store with six sorted permutation indexes."""

    def __init__(self):
        self.dictionary = TermDictionary()
        self._indexes: Dict[str, PermutationIndex] = {
            name: PermutationIndex(name) for name in ("spo", "sop", "pso", "pos", "osp", "ops")
        }
        self._size = 0
        self._pending: List[IdTriple] = []
        self._loaded = False
        self._version = 0
        self._delta = DeltaState()
        #: serializes every mutation (updates, staged loads, compaction);
        #: held across evaluate+apply by the engine's DELETE WHERE for
        #: request atomicity.  Readers never take it (except a trivial
        #: publish when racing the very first mutation of a state).
        self.writer_lock = threading.RLock()
        #: auto-compaction bar: tracked delta triples (added + removed)
        #: after which a committing update folds the overlay into a fresh
        #: base.  Mutable knob; set to 0/None to disable auto-compaction.
        self.compact_threshold: Optional[int] = DEFAULT_COMPACT_THRESHOLD
        #: compactions performed over this store's lifetime.
        self.compactions_total = 0
        #: where this store was loaded from (set by the snapshot loader) —
        #: the default target of ``compact(persist=True)``.
        self.snapshot_path: Optional[str] = None
        self._published = _StoreState(self._indexes, 0, self._delta, 0)

    def __len__(self) -> int:
        return self._size + self._delta.net_growth() + len(self._pending)

    @property
    def data_version(self) -> int:
        """Monotone counter bumped by every mutation of the triple set.

        Staged-but-unloaded triples already count as a pending mutation, so
        statistics consumers (see :class:`~repro.store.statistics.StoreStatistics`)
        can detect staleness *before* the lazy rebuild runs.  Compaction
        does **not** bump it: visible data is unchanged, so version-keyed
        caches (plans, results, views, statistics) stay valid.
        """
        return self._version + (1 if self._pending else 0)

    @property
    def delta_size(self) -> int:
        """Triples currently tracked by the delta overlay (added + removed)."""
        return len(self._delta)

    @property
    def delta_epoch(self) -> int:
        return self._delta.epoch

    # -- state publication ----------------------------------------------------

    def _publish(self) -> None:
        """Publish the current state as one immutable reference (writer-side)."""
        self._published = _StoreState(self._indexes, self._size, self._delta, self._version)

    def _current_state(self) -> _StoreState:
        """The published state, re-published first if attributes moved.

        Mutations always end in :meth:`_publish`, so a mismatch only
        happens when racing a writer mid-commit (we then wait on the
        writer lock and publish its finished state) or after out-of-band
        attribute pokes (the snapshot loader), which are single-threaded.
        """
        published = self._published
        if (
            published.indexes is self._indexes
            and published.delta is self._delta
            and published.base_size == self._size
            and published.version == self._version
        ):
            return published
        with self.writer_lock:
            self._publish()
            return self._published

    def reader(self) -> StoreReader:
        """A read view pinned to the current ``(base, delta-epoch)`` state.

        Executors grab one reader per query; everything they scan, count
        or probe afterwards answers from that instant's data even while
        updates commit concurrently.
        """
        self._ensure_loaded()
        return StoreReader(self.dictionary, self._current_state())

    # -- loading -----------------------------------------------------------

    def add(self, triple: Triple) -> None:
        """Stage a triple for loading.

        Triples are buffered and the indexes rebuilt lazily on first lookup,
        which makes bulk loading linear instead of quadratic.
        """
        encoded = (
            self.dictionary.encode(triple.subject),
            self.dictionary.encode(triple.predicate),
            self.dictionary.encode(triple.object),
        )
        self._pending.append(encoded)

    def add_many(self, triples: Iterable[Triple]) -> None:
        for triple in triples:
            self.add(triple)

    def _ensure_loaded(self) -> None:
        if not self._pending and self._loaded:
            return
        with self.writer_lock:
            if not self._pending and self._loaded:
                return
            parts: List[np.ndarray] = []
            if self._loaded and (self._size or not self._delta.empty):
                # The (merged) SPO key order *is* the canonical order; a
                # non-empty delta folds into the rebuilt base here.
                parts.append(np.stack(self._current_state().index("spo").columns(), axis=1))
            if self._pending:
                parts.append(np.asarray(self._pending, dtype=np.int64).reshape(-1, 3))
            if parts:
                merged = np.unique(np.concatenate(parts, axis=0), axis=0)
            else:
                merged = np.empty((0, 3), dtype=np.int64)
            indexes = {name: PermutationIndex(name) for name in self._indexes}
            for index in indexes.values():
                index.bulk_load(merged)
            self._indexes = indexes
            self._size = int(merged.shape[0])
            self._pending = []
            self._loaded = True
            self._delta = DeltaState(epoch=self._delta.epoch + 1)
            self._version += 1
            self._publish()

    def finalise(self) -> None:
        """Force any staged triples into the indexes."""
        self._ensure_loaded()

    # -- persistence ---------------------------------------------------------

    def save(self, path: str, statistics=None, fingerprint=None) -> dict:
        """Persist the finalised store (and optional statistics) to ``path``.

        See :mod:`repro.store.snapshot` for the on-disk format.  Returns
        the written header dict.  A non-empty delta overlay is folded into
        the written columns (the snapshot format is base-only), so loading
        the file reproduces the current visible data exactly.
        """
        from .snapshot import save_snapshot

        return save_snapshot(path, self, statistics=statistics, fingerprint=fingerprint)

    @classmethod
    def load(cls, path: str) -> "TripleStore":
        """Load a snapshot zero-copy: memory-mapped indexes, lazy dictionary.

        The loaded store is bit-identical to the one that was saved —
        same dictionary ids, same index order, same ``data_version`` — so
        every query answers exactly as it would against the original.
        Raises :class:`repro.store.snapshot.SnapshotError` subclasses on
        format/integrity problems, never returns a partially loaded store.
        Use :func:`repro.store.snapshot.load_snapshot` instead when the
        persisted statistics are wanted too.
        """
        from .snapshot import load_snapshot

        return load_snapshot(path).store

    # -- mutation (the single write path) -------------------------------------

    def apply_update(
        self,
        added: Iterable[IdTriple] = (),
        removed: Iterable[IdTriple] = (),
    ) -> ApplyResult:
        """Commit one update: make ``added`` visible and ``removed`` gone.

        Runs entirely under :attr:`writer_lock`.  The base columns are
        untouched (mmap-safe by construction); the commit publishes a
        fresh delta epoch, bumps :attr:`data_version` only when the net
        change is non-empty, and auto-compacts past
        :attr:`compact_threshold`.  Triples already present insert as
        no-ops; triples absent remove as no-ops — re-applying the same
        update is idempotent.
        """
        with self.writer_lock:
            self._ensure_loaded()
            delta = self._delta
            base_spo = self._indexes["spo"]
            new_added: Set[IdTriple] = set(delta.added)
            new_removed: Set[IdTriple] = set(delta.removed)
            inserted = 0
            deleted = 0
            for ids in removed:
                ids = (int(ids[0]), int(ids[1]), int(ids[2]))
                if ids in new_added:
                    new_added.discard(ids)
                    deleted += 1
                elif ids not in new_removed and base_spo.contains(ids):
                    new_removed.add(ids)
                    deleted += 1
            for ids in added:
                ids = (int(ids[0]), int(ids[1]), int(ids[2]))
                if ids in new_removed:
                    new_removed.discard(ids)
                    inserted += 1
                elif ids not in new_added and not base_spo.contains(ids):
                    new_added.add(ids)
                    inserted += 1
            if not inserted and not deleted:
                return ApplyResult(0, 0, self.data_version, len(delta))
            self._delta = DeltaState(
                frozenset(new_added), frozenset(new_removed), epoch=delta.epoch + 1
            )
            self._version += 1
            self._publish()
            compacted = False
            compaction_seconds: Optional[float] = None
            if self.compact_threshold and len(self._delta) >= self.compact_threshold:
                compaction_seconds = self.compact()
                compacted = True
            return ApplyResult(
                inserted,
                deleted,
                self.data_version,
                len(self._delta),
                compacted=compacted,
                compaction_seconds=compaction_seconds,
            )

    def compact(self, persist: bool = False, path: Optional[str] = None) -> float:
        """Fold the delta overlay into six fresh base indexes; returns seconds.

        Visible data is unchanged, so ``data_version`` does not move and
        pinned readers, caches and statistics all stay valid; only the
        representation changes (and future merged scans stop paying the
        fold).  With ``persist=True`` the compacted store is re-saved to
        ``path`` (default: the snapshot file it was loaded from).

        The fold *is* the compaction: each permutation's merged index —
        base columns with the delta spliced in at its sorted positions —
        is exactly the base a rebuild would produce, so promoting the six
        folded indexes costs O(base + delta) per index with no dictionary
        encoding and no re-sort.  Readers pinned to the old epoch may
        share the promoted column arrays; that is safe because columns
        are never written in place.
        """
        started = time.perf_counter()
        with self.writer_lock:
            self._ensure_loaded()
            if not self._delta.empty:
                state = self._current_state()
                self._indexes = {name: state.index(name) for name in self._indexes}
                self._size = int(self._indexes["spo"].columns()[0].shape[0])
                self._delta = DeltaState(epoch=self._delta.epoch + 1)
                self._publish()
            self.compactions_total += 1
            if persist:
                target = path or self.snapshot_path
                if target is None:
                    raise ValueError(
                        "compact(persist=True) needs a path: the store was not "
                        "loaded from a snapshot file"
                    )
                self.save(target)
                self.snapshot_path = target
        return time.perf_counter() - started

    # -- point mutations ----------------------------------------------------

    def insert(self, triple: Triple) -> bool:
        """Insert one triple through the delta overlay.

        Returns True when the triple was new.  Runs under the writer lock
        and copies-on-write into the delta — never into the (possibly
        mmap-adopted) base columns — and bumps :attr:`data_version` so
        statistics snapshots refresh instead of silently desyncing.
        """
        with self.writer_lock:
            self._ensure_loaded()
            encoded = (
                self.dictionary.encode(triple.subject),
                self.dictionary.encode(triple.predicate),
                self.dictionary.encode(triple.object),
            )
            return self.apply_update(added=[encoded]).inserted > 0

    def remove(self, triple: Triple) -> bool:
        """Remove one triple through the delta overlay; True when present.

        Bumps :attr:`data_version` like :meth:`insert`; the base columns
        are never written in place.
        """
        with self.writer_lock:
            self._ensure_loaded()
            ids = tuple(self.dictionary.lookup(term) for term in triple)
            if any(term_id is None for term_id in ids):
                return False
            return self.apply_update(removed=[ids]).deleted > 0  # type: ignore[list-item]

    # -- term helpers --------------------------------------------------------

    def encode_term(self, term: Term) -> Optional[int]:
        """Return the id of a concrete term or ``None`` if it is unknown."""
        return self.dictionary.lookup(term)

    def decode_id(self, term_id: int) -> Term:
        return self.dictionary.decode(term_id)

    # -- pattern access (each call pins the current state) ---------------------

    def _pattern_to_prefix(self, pattern: TriplePattern) -> Optional[Tuple[str, List[int]]]:
        return self.reader()._pattern_to_prefix(pattern)

    def count_pattern(self, pattern: TriplePattern) -> int:
        return self.reader().count_pattern(pattern)

    def scan_pattern(self, pattern: TriplePattern) -> Iterator[IdTriple]:
        return self.reader().scan_pattern(pattern)

    def scan_pattern_arrays(
        self, pattern: TriplePattern
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        return self.reader().scan_pattern_arrays(pattern)

    def scan_pattern_morsels(
        self, pattern: TriplePattern, morsel_size: int
    ) -> List[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
        return self.reader().scan_pattern_morsels(pattern, morsel_size)

    @staticmethod
    def pattern_has_repeated_variables(pattern: TriplePattern) -> bool:
        return pattern_has_repeated_variables(pattern)

    @staticmethod
    def filter_repeated_variables(
        pattern: TriplePattern, s: np.ndarray, p: np.ndarray, o: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        return filter_repeated_variables(pattern, s, p, o)

    def index_for_mask(self, mask: Tuple[bool, bool, bool]) -> PermutationIndex:
        """The (merged) permutation index serving a bound-positions mask."""
        return self.reader().index_for_mask(mask)

    def contains(self, triple: Triple) -> bool:
        return self.reader().contains(triple)

    def triples(self, pattern: Optional[TriplePattern] = None) -> Iterator[Triple]:
        """Yield decoded :class:`Triple` objects matching ``pattern`` (or all)."""
        return self.reader().triples(pattern)

    # -- statistics access ----------------------------------------------------

    def index(self, name: str) -> PermutationIndex:
        """Return a (merged) permutation index (statistics and tests use this)."""
        return self.reader().index(name)

    def distinct_subjects(self, predicate_id: Optional[int] = None) -> int:
        return self.reader().distinct_subjects(predicate_id)

    def distinct_objects(self, predicate_id: Optional[int] = None) -> int:
        return self.reader().distinct_objects(predicate_id)

    def distinct_predicates(self) -> int:
        return self.reader().distinct_predicates()
