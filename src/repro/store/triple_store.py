"""The triple store: dictionary encoding plus six permutation indexes.

The store is the substrate every other layer builds on: the executor scans
it, the cardinality estimator asks it for prefix counts, the data generators
bulk-load into it.  It deliberately stays storage-model agnostic (the
paper's ``Cout`` is defined to be oblivious to the storage model): lookups
are expressed in terms of which triple components are bound.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from ..rdf.dictionary import TermDictionary
from ..rdf.terms import Term, Variable
from ..rdf.triples import Triple, TriplePattern
from .indexes import PermutationIndex

IdTriple = Tuple[int, int, int]

#: Which index serves which bound-positions mask (s, p, o).
#: The chosen index has the bound components as a prefix of its ordering.
_INDEX_FOR_MASK = {
    (False, False, False): "spo",
    (True, False, False): "spo",
    (False, True, False): "pos",
    (False, False, True): "osp",
    (True, True, False): "spo",
    (True, False, True): "sop",
    (False, True, True): "pos",
    (True, True, True): "spo",
}


class TripleStore:
    """Dictionary-encoded triple store with six sorted permutation indexes."""

    def __init__(self):
        self.dictionary = TermDictionary()
        self._indexes: Dict[str, PermutationIndex] = {
            name: PermutationIndex(name) for name in ("spo", "sop", "pso", "pos", "osp", "ops")
        }
        self._size = 0
        self._pending: List[IdTriple] = []
        self._loaded = False

    def __len__(self) -> int:
        return self._size + len(self._pending)

    # -- loading -----------------------------------------------------------

    def add(self, triple: Triple) -> None:
        """Stage a triple for loading.

        Triples are buffered and the indexes rebuilt lazily on first lookup,
        which makes bulk loading linear instead of quadratic.
        """
        encoded = (
            self.dictionary.encode(triple.subject),
            self.dictionary.encode(triple.predicate),
            self.dictionary.encode(triple.object),
        )
        self._pending.append(encoded)

    def add_many(self, triples: Iterable[Triple]) -> None:
        for triple in triples:
            self.add(triple)

    def _ensure_loaded(self) -> None:
        if not self._pending and self._loaded:
            return
        if self._pending or not self._loaded:
            existing = list(self._indexes["spo"].keys()) if self._loaded else []
            merged = set(existing)
            merged.update(self._pending)
            ordered = sorted(merged)
            for index in self._indexes.values():
                index.bulk_load(ordered)
            self._size = len(ordered)
            self._pending = []
            self._loaded = True

    def finalise(self) -> None:
        """Force any staged triples into the indexes."""
        self._ensure_loaded()

    # -- term helpers --------------------------------------------------------

    def encode_term(self, term: Term) -> Optional[int]:
        """Return the id of a concrete term or ``None`` if it is unknown."""
        return self.dictionary.lookup(term)

    def decode_id(self, term_id: int) -> Term:
        return self.dictionary.decode(term_id)

    # -- pattern access -------------------------------------------------------

    def _pattern_to_prefix(self, pattern: TriplePattern) -> Optional[Tuple[str, List[int]]]:
        """Translate a pattern into (index name, bound-prefix ids).

        Returns ``None`` when a constant in the pattern does not occur in the
        data at all, which means the pattern can produce no matches.
        """
        mask = pattern.bound_positions()
        index_name = _INDEX_FOR_MASK[mask]
        positions = {"s": 0, "p": 1, "o": 2}
        components = (pattern.subject, pattern.predicate, pattern.object)
        prefix: List[int] = []
        for ch in index_name:
            term = components[positions[ch]]
            if isinstance(term, Variable):
                break
            term_id = self.dictionary.lookup(term)
            if term_id is None:
                return None
            prefix.append(term_id)
        return index_name, prefix

    def count_pattern(self, pattern: TriplePattern) -> int:
        """Exact number of triples matching the constant positions of ``pattern``.

        Repeated variables (e.g. ``?x p ?x``) are not post-filtered here; the
        executor applies that filter.  The count is therefore an upper bound
        in that corner case and exact otherwise.
        """
        self._ensure_loaded()
        resolved = self._pattern_to_prefix(pattern)
        if resolved is None:
            return 0
        index_name, prefix = resolved
        return self._indexes[index_name].count_prefix(prefix)

    def scan_pattern(self, pattern: TriplePattern) -> Iterator[Tuple[int, int, int]]:
        """Yield id triples matching the constant positions of ``pattern``.

        Results honour repeated variables (``?x p ?x`` only yields triples
        with equal subject and object).
        """
        self._ensure_loaded()
        resolved = self._pattern_to_prefix(pattern)
        if resolved is None:
            return
        index_name, prefix = resolved
        subject, predicate, object_ = pattern.as_tuple()
        same_so = isinstance(subject, Variable) and subject == object_
        same_sp = isinstance(subject, Variable) and subject == predicate
        same_po = isinstance(predicate, Variable) and predicate == object_
        for id_triple in self._indexes[index_name].scan_prefix(prefix):
            s, p, o = id_triple
            if same_so and s != o:
                continue
            if same_sp and s != p:
                continue
            if same_po and p != o:
                continue
            yield id_triple

    def contains(self, triple: Triple) -> bool:
        self._ensure_loaded()
        ids = tuple(self.dictionary.lookup(term) for term in triple)
        if any(term_id is None for term_id in ids):
            return False
        return self._indexes["spo"].contains(ids)  # type: ignore[arg-type]

    def triples(self, pattern: Optional[TriplePattern] = None) -> Iterator[Triple]:
        """Yield decoded :class:`Triple` objects matching ``pattern`` (or all)."""
        self._ensure_loaded()
        if pattern is None:
            pattern = TriplePattern(Variable("s"), Variable("p"), Variable("o"))
        for s, p, o in self.scan_pattern(pattern):
            yield Triple(self.decode_id(s), self.decode_id(p), self.decode_id(o))

    # -- statistics access ----------------------------------------------------

    def index(self, name: str) -> PermutationIndex:
        """Return a raw permutation index (statistics and tests use this)."""
        self._ensure_loaded()
        return self._indexes[name]

    def distinct_subjects(self, predicate_id: Optional[int] = None) -> int:
        self._ensure_loaded()
        if predicate_id is None:
            return self._indexes["spo"].distinct_prefix_values([])
        return self._indexes["pso"].distinct_prefix_values([predicate_id])

    def distinct_objects(self, predicate_id: Optional[int] = None) -> int:
        self._ensure_loaded()
        if predicate_id is None:
            return self._indexes["osp"].distinct_prefix_values([])
        return self._indexes["pos"].distinct_prefix_values([predicate_id])

    def distinct_predicates(self) -> int:
        self._ensure_loaded()
        return self._indexes["pso"].distinct_prefix_values([])
