"""Sorted permutation indexes over id-encoded triples, backed by numpy.

A :class:`PermutationIndex` stores every triple as a key in one of the six
orderings of (subject, predicate, object) — SPO, SOP, PSO, POS, OSP, OPS —
kept sorted, so any lookup with a bound *prefix* of the ordering becomes a
binary-search range scan.  This mirrors how RDF engines such as RDF-3X,
Hexastore and Virtuoso organise their data and gives the cardinality
estimator exact prefix counts.

The keys live in three contiguous ``int64`` column arrays sorted
lexicographically.  Prefix lookups are hierarchical ``numpy.searchsorted``
calls, distinct-value counts are vectorized difference scans, and the
vectorized executor (:mod:`repro.engine.vector`) reads the column views
directly — a whole batch of index probes becomes two ``searchsorted`` calls
over a packed key array instead of a Python loop.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

IdTriple = Tuple[int, int, int]

#: Canonical component order of an id triple.
SPO_COMPONENTS = ("subject", "predicate", "object")

#: All six permutations, named by their component order.
PERMUTATIONS = ("spo", "sop", "pso", "pos", "osp", "ops")

_COMPONENT_POSITION = {"s": 0, "p": 1, "o": 2}

_EMPTY = np.empty(0, dtype=np.int64)

#: Shared bound for every int64 key-packing scheme (index prefix keys here,
#: row/join codes in :mod:`repro.engine.vector`): packed values must stay
#: below this so one more fold step cannot overflow int64.
PACK_LIMIT = 2 ** 62


def permutation_positions(name: str) -> Tuple[int, int, int]:
    """Map a permutation name like ``"pos"`` to positions in an SPO tuple.

    The result gives, for each slot of the permuted key, the index of the
    component in the canonical (s, p, o) order: ``"pos"`` -> ``(1, 2, 0)``.
    """
    if len(name) != 3 or sorted(name) != ["o", "p", "s"]:
        raise ValueError("invalid permutation name %r" % name)
    return tuple(_COMPONENT_POSITION[ch] for ch in name)


class PermutationIndex:
    """One sorted permutation of the triple table, stored columnar."""

    def __init__(self, name: str):
        self.name = name
        self.positions = permutation_positions(name)
        #: for each canonical component (s, p, o), the key slot holding it
        self.slot_of = [0, 0, 0]
        for slot, component in enumerate(self.positions):
            self.slot_of[component] = slot
        self._columns: Tuple[np.ndarray, np.ndarray, np.ndarray] = (_EMPTY, _EMPTY, _EMPTY)
        #: depth -> (packed keys, multipliers, per-column maxima) or None
        self._packed: Dict[int, Optional[Tuple[np.ndarray, List[int], List[int]]]] = {}
        self._finalised = False

    def __len__(self) -> int:
        return int(self._columns[0].shape[0])

    def _permute(self, triple: IdTriple) -> IdTriple:
        p0, p1, p2 = self.positions
        return (triple[p0], triple[p1], triple[p2])

    def _unpermute(self, key: IdTriple) -> IdTriple:
        result = [0, 0, 0]
        for slot, component in enumerate(self.positions):
            result[component] = key[slot]
        return (result[0], result[1], result[2])

    # -- building ---------------------------------------------------------

    def bulk_load(self, triples: Iterable[IdTriple]) -> None:
        """(Re)build the index from id triples (iterable or an ``(n, 3)`` array)."""
        if isinstance(triples, np.ndarray):
            data = triples.astype(np.int64, copy=False).reshape(-1, 3)
        else:
            data = np.asarray(list(triples), dtype=np.int64).reshape(-1, 3)
        p0, p1, p2 = self.positions
        c0, c1, c2 = data[:, p0], data[:, p1], data[:, p2]
        order = np.lexsort((c2, c1, c0))
        self._columns = (
            np.ascontiguousarray(c0[order]),
            np.ascontiguousarray(c1[order]),
            np.ascontiguousarray(c2[order]),
        )
        self._packed = {}
        self._finalised = True

    def adopt_sorted_columns(
        self, columns: Tuple[np.ndarray, np.ndarray, np.ndarray]
    ) -> None:
        """Adopt already-sorted key columns without copying or re-sorting.

        The snapshot loader hands the index memory-mapped column views in
        exactly the lexicographic order :meth:`bulk_load` would have
        produced — adopting them is what makes snapshot load zero-copy.
        The columns are treated as read-only; point mutations copy them
        into fresh arrays (``np.insert`` / ``np.delete``), never write in
        place.
        """
        self._columns = tuple(columns)
        self._packed = {}
        self._finalised = True

    def insert(self, triple: IdTriple) -> None:
        """Insert a single triple keeping the index sorted."""
        key = self._permute(triple)
        low, high = self._range(key)
        if high > low:
            return
        self._columns = tuple(
            np.insert(column, low, key[slot]) for slot, column in enumerate(self._columns)
        )
        self._packed = {}

    def remove(self, triple: IdTriple) -> bool:
        """Remove a triple; returns True when it was present."""
        key = self._permute(triple)
        low, high = self._range(key)
        if high <= low:
            return False
        self._columns = tuple(np.delete(column, low) for column in self._columns)
        self._packed = {}
        return True

    # -- lookups ----------------------------------------------------------

    def _range(self, prefix: Sequence[int]) -> Tuple[int, int]:
        """Return the [low, high) slice of keys starting with ``prefix``."""
        low, high = 0, len(self)
        for depth, value in enumerate(prefix):
            segment = self._columns[depth][low:high]
            left = int(np.searchsorted(segment, value, side="left"))
            right = int(np.searchsorted(segment, value, side="right"))
            low, high = low + left, low + right
            if low >= high:
                return low, low
        return low, high

    def prefix_range(self, prefix: Sequence[int]) -> Tuple[int, int]:
        """Public alias of the [low, high) range lookup (vectorized callers)."""
        return self._range(prefix)

    def count_prefix(self, prefix: Sequence[int]) -> int:
        """Count triples whose permuted key starts with ``prefix``."""
        low, high = self._range(prefix)
        return high - low

    def scan_prefix(self, prefix: Sequence[int]) -> Iterator[IdTriple]:
        """Yield triples (in canonical SPO component order) matching ``prefix``."""
        low, high = self._range(prefix)
        if high <= low:
            return
        s, p, o = self.spo_columns(low, high)
        yield from zip(s.tolist(), p.tolist(), o.tolist())

    def contains(self, triple: IdTriple) -> bool:
        low, high = self._range(self._permute(triple))
        return high > low

    def distinct_prefix_values(self, prefix: Sequence[int]) -> int:
        """Count distinct values of the next key component under ``prefix``.

        For example on the POS index, ``distinct_prefix_values([p])`` is the
        number of distinct objects for predicate ``p`` — exactly what the
        cardinality estimator needs.
        """
        low, high = self._range(prefix)
        if high <= low:
            return 0
        segment = self._columns[len(prefix)][low:high]
        return int(np.count_nonzero(segment[1:] != segment[:-1])) + 1

    def keys(self) -> Sequence[IdTriple]:
        """Expose the sorted permuted keys as tuples (statistics, tests)."""
        c0, c1, c2 = self._columns
        return list(zip(c0.tolist(), c1.tolist(), c2.tolist()))

    # -- columnar access (vectorized execution path) -----------------------

    def columns(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The raw sorted key columns in permuted order (treat as read-only)."""
        return self._columns

    def spo_columns(self, low: int, high: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Canonical (s, p, o) column views over the key range [low, high)."""
        s_slot, p_slot, o_slot = self.slot_of
        columns = self._columns
        return columns[s_slot][low:high], columns[p_slot][low:high], columns[o_slot][low:high]

    def morsel_ranges(self, low: int, high: int, morsel_size: int) -> List[Tuple[int, int]]:
        """Split the key range [low, high) into ``morsel_size``-row chunks.

        The morsel boundaries are deterministic for a given range and size,
        so parallel consumers that concatenate per-morsel results in order
        reproduce the serial scan bit for bit.
        """
        if morsel_size <= 0:
            raise ValueError("morsel_size must be positive, got %d" % morsel_size)
        bounds = list(range(low, high, morsel_size)) + [high]
        return list(zip(bounds, bounds[1:]))

    def packed_prefix(
        self, depth: int
    ) -> Optional[Tuple[np.ndarray, List[int], List[int]]]:
        """Packed int64 keys of the first ``depth`` components, built lazily.

        Returns ``(packed, multipliers, maxima)`` where
        ``packed[i] == sum(columns[d][i] * multipliers[d])`` — one sorted
        int64 array preserving the lexicographic key order, so a whole batch
        of prefix probes becomes two vectorized ``searchsorted`` calls.
        Probe values must be clamped to ``maxima`` (larger values cannot
        occur in the column and would alias a neighbouring prefix).
        Returns ``None`` when the id range is too large to pack without
        overflow; callers then probe row by row.
        """
        if depth in self._packed:
            return self._packed[depth]
        count = len(self)
        maxima = [
            int(self._columns[d].max()) if count else 0 for d in range(depth)
        ]
        multipliers = [1] * depth
        for d in range(depth - 2, -1, -1):
            multipliers[d] = multipliers[d + 1] * (maxima[d + 1] + 1)
        result: Optional[Tuple[np.ndarray, List[int], List[int]]] = None
        total = multipliers[0] * (maxima[0] + 1) if depth else 1
        if total < PACK_LIMIT:
            if depth == 1:
                packed = self._columns[0]
            else:
                packed = np.zeros(count, dtype=np.int64)
                for d in range(depth):
                    packed += self._columns[d] * multipliers[d]
            result = (packed, multipliers, maxima)
        self._packed[depth] = result
        return result
