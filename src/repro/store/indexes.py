"""Sorted permutation indexes over id-encoded triples.

A :class:`PermutationIndex` stores every triple as a tuple of integer ids in
one of the six orderings of (subject, predicate, object) — SPO, SOP, PSO,
POS, OSP, OPS — kept sorted, so any lookup with a bound *prefix* of the
ordering becomes a binary-search range scan.  This mirrors how RDF engines
such as RDF-3X, Hexastore and Virtuoso organise their data and gives the
cardinality estimator exact prefix counts.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

IdTriple = Tuple[int, int, int]

#: Canonical component order of an id triple.
SPO_COMPONENTS = ("subject", "predicate", "object")

#: All six permutations, named by their component order.
PERMUTATIONS = ("spo", "sop", "pso", "pos", "osp", "ops")

_COMPONENT_POSITION = {"s": 0, "p": 1, "o": 2}


def permutation_positions(name: str) -> Tuple[int, int, int]:
    """Map a permutation name like ``"pos"`` to positions in an SPO tuple.

    The result gives, for each slot of the permuted key, the index of the
    component in the canonical (s, p, o) order: ``"pos"`` -> ``(1, 2, 0)``.
    """
    if len(name) != 3 or sorted(name) != ["o", "p", "s"]:
        raise ValueError("invalid permutation name %r" % name)
    return tuple(_COMPONENT_POSITION[ch] for ch in name)


class PermutationIndex:
    """One sorted permutation of the triple table."""

    def __init__(self, name: str):
        self.name = name
        self.positions = permutation_positions(name)
        self._keys: List[IdTriple] = []
        self._finalised = False

    def __len__(self) -> int:
        return len(self._keys)

    def _permute(self, triple: IdTriple) -> IdTriple:
        p0, p1, p2 = self.positions
        return (triple[p0], triple[p1], triple[p2])

    def _unpermute(self, key: IdTriple) -> IdTriple:
        result = [0, 0, 0]
        for slot, component in enumerate(self.positions):
            result[component] = key[slot]
        return (result[0], result[1], result[2])

    # -- building ---------------------------------------------------------

    def bulk_load(self, triples: Iterable[IdTriple]) -> None:
        """(Re)build the index from an iterable of id triples."""
        self._keys = sorted(self._permute(triple) for triple in triples)
        self._finalised = True

    def insert(self, triple: IdTriple) -> None:
        """Insert a single triple keeping the index sorted."""
        key = self._permute(triple)
        position = bisect.bisect_left(self._keys, key)
        if position < len(self._keys) and self._keys[position] == key:
            return
        self._keys.insert(position, key)

    def remove(self, triple: IdTriple) -> bool:
        """Remove a triple; returns True when it was present."""
        key = self._permute(triple)
        position = bisect.bisect_left(self._keys, key)
        if position < len(self._keys) and self._keys[position] == key:
            del self._keys[position]
            return True
        return False

    # -- lookups ----------------------------------------------------------

    def _range(self, prefix: Sequence[int]) -> Tuple[int, int]:
        """Return the [low, high) slice of keys starting with ``prefix``."""
        if not prefix:
            return 0, len(self._keys)
        low_key = tuple(prefix)
        high_key = tuple(prefix[:-1]) + (prefix[-1] + 1,)
        low = bisect.bisect_left(self._keys, low_key)
        high = bisect.bisect_left(self._keys, high_key)
        return low, high

    def count_prefix(self, prefix: Sequence[int]) -> int:
        """Count triples whose permuted key starts with ``prefix``."""
        low, high = self._range(prefix)
        return high - low

    def scan_prefix(self, prefix: Sequence[int]) -> Iterator[IdTriple]:
        """Yield triples (in canonical SPO component order) matching ``prefix``."""
        low, high = self._range(prefix)
        for position in range(low, high):
            yield self._unpermute(self._keys[position])

    def contains(self, triple: IdTriple) -> bool:
        key = self._permute(triple)
        position = bisect.bisect_left(self._keys, key)
        return position < len(self._keys) and self._keys[position] == key

    def distinct_prefix_values(self, prefix: Sequence[int]) -> int:
        """Count distinct values of the next key component under ``prefix``.

        For example on the POS index, ``distinct_prefix_values([p])`` is the
        number of distinct objects for predicate ``p`` — exactly what the
        cardinality estimator needs.
        """
        low, high = self._range(prefix)
        depth = len(prefix)
        distinct = 0
        previous: Optional[int] = None
        for position in range(low, high):
            value = self._keys[position][depth]
            if value != previous:
                distinct += 1
                previous = value
        return distinct

    def keys(self) -> Sequence[IdTriple]:
        """Expose the raw sorted keys (used by statistics collection)."""
        return self._keys
