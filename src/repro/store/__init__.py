"""Triple-store substrate: permutation indexes, the store, statistics, snapshots."""

from .indexes import PermutationIndex, PERMUTATIONS, permutation_positions
from .snapshot import (
    SnapshotError,
    SnapshotFormatError,
    SnapshotIntegrityError,
    StoreSnapshot,
    load_snapshot,
    save_snapshot,
)
from .statistics import PredicateStatistics, StoreStatistics
from .triple_store import TripleStore

__all__ = [
    "PERMUTATIONS",
    "PermutationIndex",
    "PredicateStatistics",
    "SnapshotError",
    "SnapshotFormatError",
    "SnapshotIntegrityError",
    "StoreSnapshot",
    "StoreStatistics",
    "TripleStore",
    "load_snapshot",
    "permutation_positions",
    "save_snapshot",
]
