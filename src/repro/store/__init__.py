"""Triple-store substrate: permutation indexes, the store and its statistics."""

from .indexes import PermutationIndex, PERMUTATIONS, permutation_positions
from .statistics import PredicateStatistics, StoreStatistics
from .triple_store import TripleStore

__all__ = [
    "PERMUTATIONS",
    "PermutationIndex",
    "PredicateStatistics",
    "StoreStatistics",
    "TripleStore",
    "permutation_positions",
]
