"""Zero-copy store snapshots: persist a finalised store, load it via mmap.

Every experiment and service run used to regenerate its dataset, re-encode
the term dictionary and re-sort all six permutation indexes in-process —
pure startup cost for the paper's repeated-runs-over-curated-data
methodology.  A snapshot captures the finished product of that work once:

* the six :class:`~repro.store.indexes.PermutationIndex` column arrays are
  written out verbatim (already sorted), so loading *adopts* them as
  ``np.memmap`` views instead of re-sorting — the OS pages data in on
  demand and shares it between processes;
* the :class:`~repro.rdf.dictionary.TermDictionary` is written as a packed
  blob and decoded *lazily*: terms materialise one by one the first time an
  id is decoded (late materialization means most never are), and the
  term→id map hydrates only when a query actually looks a constant up;
* the collected :class:`~repro.store.statistics.StoreStatistics` (predicate
  stats + characteristic sets) ride along keyed by
  :attr:`~repro.store.triple_store.TripleStore.data_version`, so the
  optimizer is warm immediately after load.

A loaded store is **bit-identical** to the freshly built one: same
dictionary ids, same index order, same statistics — every query answers
exactly the same rows, profiles and ``Cout`` under either executor and any
morsel parallelism degree (asserted by ``tests/test_store_snapshot.py``).

On-disk format (version 1)
--------------------------

One file, little-endian::

    offset  size  field
    0       8     magic ``b"REPROSNP"``
    8       4     format version (uint32)
    12      4     header length in bytes (uint32)
    16      4     CRC-32 of every byte from offset 24 to EOF (uint32)
    20      4     zero padding
    24      var   header: UTF-8 JSON (see below)
    ...           zero padding to the next 8-byte boundary
    ...           payload: the sections, each 8-byte aligned

The JSON header records ``format_version``, ``triples``, ``terms``,
``data_version``, ``payload_size``, an optional ``statistics`` payload, an
optional ``fingerprint`` string (callers that cache snapshots — the
``--snapshot`` engine factories — store a generator-config fingerprint
there and rebuild on mismatch, so a stale cache never silently serves an
outdated dataset), and a ``sections`` table mapping section names to
``{offset, count, dtype}`` (offsets relative to the payload base).
Sections are:

* ``dictionary/kinds`` (uint8) — term kind tag per id,
* ``dictionary/offsets`` (int64, ``terms + 1`` entries) — blob offsets,
* ``dictionary/blob`` (uint8) — packed term payloads,
* ``index/<perm>/<slot>`` (int64) — the three sorted key columns of each
  of the six permutations (``spo`` … ``ops``).

Versioning policy: the format version is bumped on **any** layout change;
readers accept exactly their own version and raise
:class:`SnapshotFormatError` otherwise (no silent migration).  Corruption
and truncation are caught by the size check plus the CRC and raise
:class:`SnapshotIntegrityError` — a snapshot either loads bit-identically
or not at all, never as garbage results.  The CRC scan reads the whole
file once; a per-process cache keyed by (path, size, mtime, crc) skips it
for repeated loads of an unchanged file, so only the *first* load of a
snapshot pays O(file size) and later engine constructions over the same
snapshot stay page-on-demand.
"""

from __future__ import annotations

import json
import os
import struct
import tempfile
import zlib
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..rdf.dictionary import TermDictionary
from ..rdf.terms import BNode, IRI, Literal, Term
from .indexes import PERMUTATIONS
from .statistics import StoreStatistics
from .triple_store import TripleStore

#: First 8 bytes of every snapshot file.
MAGIC = b"REPROSNP"

#: Bumped on any change to the layout documented above.
FORMAT_VERSION = 1

#: Fixed-size preamble before the JSON header.
_PREAMBLE = struct.Struct("<8sIII4x")

_ALIGNMENT = 8

#: Term kind tags used in the ``dictionary/kinds`` section.
_KIND_BNODE = 0
_KIND_IRI = 1
_KIND_PLAIN_LITERAL = 2
_KIND_LANG_LITERAL = 3
_KIND_TYPED_LITERAL = 4

_LEN = struct.Struct("<I")

_DTYPES = {"int64": np.int64, "uint8": np.uint8}


class SnapshotError(Exception):
    """Base class for every snapshot load/save failure."""


class SnapshotFormatError(SnapshotError):
    """The file is not a snapshot, or its format version is unsupported."""


class SnapshotIntegrityError(SnapshotError):
    """The file is truncated or corrupted (size/checksum mismatch)."""


# -- term payload encoding ----------------------------------------------------


def _encode_term(term: Term) -> Tuple[int, bytes]:
    """Return the (kind tag, payload bytes) encoding of a concrete term."""
    if isinstance(term, BNode):
        return _KIND_BNODE, term.label.encode("utf-8")
    if isinstance(term, IRI):
        return _KIND_IRI, term.value.encode("utf-8")
    if isinstance(term, Literal):
        lexical = term.lexical.encode("utf-8")
        if term.language is not None:
            return _KIND_LANG_LITERAL, _LEN.pack(len(lexical)) + lexical + term.language.encode("utf-8")
        if term.datatype is not None:
            return (
                _KIND_TYPED_LITERAL,
                _LEN.pack(len(lexical)) + lexical + term.datatype.value.encode("utf-8"),
            )
        return _KIND_PLAIN_LITERAL, lexical
    raise SnapshotError("cannot snapshot non-concrete term %r" % (term,))


def _decode_term(kind: int, payload: bytes) -> Term:
    if kind == _KIND_BNODE:
        return BNode(payload.decode("utf-8"))
    if kind == _KIND_IRI:
        return IRI(payload.decode("utf-8"))
    if kind == _KIND_PLAIN_LITERAL:
        return Literal(payload.decode("utf-8"))
    if kind in (_KIND_LANG_LITERAL, _KIND_TYPED_LITERAL):
        (lexical_length,) = _LEN.unpack_from(payload)
        lexical = payload[_LEN.size : _LEN.size + lexical_length].decode("utf-8")
        rest = payload[_LEN.size + lexical_length :].decode("utf-8")
        if kind == _KIND_LANG_LITERAL:
            return Literal(lexical, language=rest)
        return Literal(lexical, datatype=IRI(rest))
    raise SnapshotFormatError("unknown term kind tag %d" % kind)


class LazyTermDictionary(TermDictionary):
    """A :class:`TermDictionary` hydrating from a snapshot blob on demand.

    ``decode(id)`` parses exactly one term from the mapped blob the first
    time that id is asked for (late materialization means most ids never
    are).  The term→id direction (``lookup`` / ``encode`` / ``in``)
    hydrates the whole reverse map once, on first use — queries with
    constants pay that cost on their first execution, not at load time.
    Mutation (``encode`` of a fresh term) works exactly as on the eager
    dictionary after hydration.
    """

    def __init__(self, kinds: np.ndarray, offsets: np.ndarray, blob: np.ndarray):
        super().__init__()
        self._kinds = kinds
        self._offsets = offsets
        self._blob = blob
        count = int(kinds.shape[0])
        self._id_to_term: List[Optional[Term]] = [None] * count
        self._decoded = 0
        self._reverse_built = count == 0

    @property
    def decoded_terms(self) -> int:
        """How many terms have been parsed from the blob (laziness probe)."""
        return self._decoded

    @property
    def reverse_hydrated(self) -> bool:
        """True once the term→id map has been built (laziness probe)."""
        return self._reverse_built

    def decode(self, term_id: int) -> Term:
        if 0 <= term_id < len(self._id_to_term):
            term = self._id_to_term[term_id]
            if term is None:
                start = int(self._offsets[term_id])
                stop = int(self._offsets[term_id + 1])
                term = _decode_term(int(self._kinds[term_id]), bytes(self._blob[start:stop]))
                self._id_to_term[term_id] = term
                self._decoded += 1
            return term
        raise KeyError("unknown term id %r" % term_id)

    def _hydrate_reverse(self) -> None:
        if self._reverse_built:
            return
        for term_id in range(len(self._id_to_term)):
            self._term_to_id[self.decode(term_id)] = term_id
        self._reverse_built = True

    def lookup(self, term: Term) -> Optional[int]:
        self._hydrate_reverse()
        return super().lookup(term)

    def encode(self, term: Term) -> int:
        self._hydrate_reverse()
        return super().encode(term)

    def __contains__(self, term: Term) -> bool:
        self._hydrate_reverse()
        return super().__contains__(term)

    def terms(self) -> Iterator[Term]:
        self._hydrate_reverse()
        return super().terms()

    def items(self) -> Iterator[tuple]:
        self._hydrate_reverse()
        return super().items()


# -- saving -------------------------------------------------------------------


def _pad_to(size: int, alignment: int = _ALIGNMENT) -> int:
    remainder = size % alignment
    return 0 if remainder == 0 else alignment - remainder


def _dictionary_sections(dictionary: TermDictionary) -> List[Tuple[str, np.ndarray]]:
    kinds = np.empty(len(dictionary), dtype=np.uint8)
    offsets = np.zeros(len(dictionary) + 1, dtype=np.int64)
    blob = bytearray()
    for term, term_id in dictionary.items():
        kind, payload = _encode_term(term)
        kinds[term_id] = kind
        blob.extend(payload)
        offsets[term_id + 1] = len(blob)
    return [
        ("dictionary/kinds", kinds),
        ("dictionary/offsets", offsets),
        ("dictionary/blob", np.frombuffer(bytes(blob), dtype=np.uint8)),
    ]


def save_snapshot(
    path: str,
    store: TripleStore,
    statistics: Optional[StoreStatistics] = None,
    fingerprint: Optional[str] = None,
) -> Dict:
    """Serialize a finalised store (and optionally its statistics) to ``path``.

    Returns the header dict that was written.  The write is atomic (temp
    file + rename), so a crashed save never leaves a half-written snapshot
    where a loader could find it.  ``fingerprint`` is an opaque string the
    caller can use to identify *what* was snapshotted (e.g. a generator
    config); cache-style consumers compare it on load and rebuild on
    mismatch.
    """
    store.finalise()
    sections: List[Tuple[str, np.ndarray]] = _dictionary_sections(store.dictionary)
    for name in PERMUTATIONS:
        for slot, column in enumerate(store.index(name).columns()):
            sections.append(
                ("index/%s/%d" % (name, slot), np.ascontiguousarray(column, dtype=np.int64))
            )

    section_table: Dict[str, Dict] = {}
    payload_size = 0
    for name, array in sections:
        payload_size += _pad_to(payload_size)
        section_table[name] = {
            "offset": payload_size,
            "count": int(array.shape[0]),
            "dtype": str(array.dtype),
        }
        payload_size += array.nbytes

    statistics_payload = None
    if statistics is not None:
        if statistics.store is not store:
            raise SnapshotError("statistics were collected over a different store")
        # as_payload() collects (or refreshes) first, so the payload is
        # always keyed by the data_version being written.
        statistics_payload = statistics.as_payload()

    header = {
        "format_version": FORMAT_VERSION,
        "triples": len(store),
        "terms": len(store.dictionary),
        "data_version": store.data_version,
        "payload_size": payload_size,
        "fingerprint": fingerprint,
        "statistics": statistics_payload,
        "sections": section_table,
    }
    header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
    header_padding = b"\0" * _pad_to(len(header_bytes))

    # A unique temp name keeps concurrent savers of the same path from
    # interleaving writes; os.replace publishes whole files only.
    directory = os.path.dirname(os.path.abspath(path)) or "."
    handle = tempfile.NamedTemporaryFile(
        mode="wb",
        dir=directory,
        prefix=os.path.basename(path) + ".",
        suffix=".tmp",
        delete=False,
    )
    temp_path = handle.name
    try:
        with handle:
            # One serialization pass: each section's bytes feed the CRC and
            # the file once; the CRC is patched into the preamble afterwards.
            handle.write(_PREAMBLE.pack(MAGIC, FORMAT_VERSION, len(header_bytes), 0))
            crc = zlib.crc32(header_bytes)
            handle.write(header_bytes)
            crc = zlib.crc32(header_padding, crc)
            handle.write(header_padding)
            written = 0
            for name, array in sections:
                gap = section_table[name]["offset"] - written
                if gap:
                    padding = b"\0" * gap
                    crc = zlib.crc32(padding, crc)
                    handle.write(padding)
                    written += gap
                data = array.tobytes()
                crc = zlib.crc32(data, crc)
                handle.write(data)
                written += array.nbytes
            handle.seek(16)
            handle.write(struct.pack("<I", crc & 0xFFFFFFFF))
        os.replace(temp_path, path)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise
    return header


# -- loading ------------------------------------------------------------------


def _checksum_body(path: str) -> int:
    crc = 0
    with open(path, "rb") as handle:
        handle.seek(_PREAMBLE.size)
        while True:
            chunk = handle.read(1 << 20)
            if not chunk:
                return crc & 0xFFFFFFFF
            crc = zlib.crc32(chunk, crc)


#: Files whose body CRC already verified this process, keyed by
#: (absolute path, size, mtime_ns, crc).  Any rewrite of the file changes
#: the key, so corruption after a successful load is still caught; the
#: cache only spares *repeated* loads of an unchanged snapshot (one per
#: executor/parallelism engine, say) from re-reading the whole file.
_verified_bodies: Dict[Tuple[str, int, int, int], bool] = {}


def _read_header(path: str) -> Tuple[Dict, int, int]:
    """Validate preamble + checksum; return (header, payload_base, crc)."""
    try:
        file_size = os.path.getsize(path)
        with open(path, "rb") as handle:
            preamble = handle.read(_PREAMBLE.size)
            if len(preamble) < _PREAMBLE.size:
                raise SnapshotFormatError("%s: too short to be a snapshot" % path)
            magic, version, header_length, crc = _PREAMBLE.unpack(preamble)
            if magic != MAGIC:
                raise SnapshotFormatError("%s: not a repro snapshot (bad magic)" % path)
            if version != FORMAT_VERSION:
                raise SnapshotFormatError(
                    "%s: snapshot format version %d is not supported (this "
                    "build reads version %d); regenerate the snapshot"
                    % (path, version, FORMAT_VERSION)
                )
            header_bytes = handle.read(header_length)
    except OSError as error:
        raise SnapshotError("%s: cannot read snapshot (%s)" % (path, error)) from error
    if len(header_bytes) < header_length:
        raise SnapshotIntegrityError("%s: truncated snapshot header" % path)
    try:
        header = json.loads(header_bytes.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise SnapshotIntegrityError("%s: corrupted snapshot header (%s)" % (path, error)) from error
    if not isinstance(header, dict) or any(
        key not in header
        for key in ("payload_size", "triples", "terms", "data_version", "sections")
    ):
        raise SnapshotIntegrityError("%s: snapshot header is missing required fields" % path)

    payload_base = _PREAMBLE.size + header_length + _pad_to(header_length)
    expected_size = payload_base + header["payload_size"]
    if file_size != expected_size:
        raise SnapshotIntegrityError(
            "%s: snapshot is %d bytes but the header promises %d "
            "(truncated or overwritten)" % (path, file_size, expected_size)
        )
    try:
        mtime_ns = os.stat(path).st_mtime_ns
    except OSError:
        mtime_ns = -1
    verified_key = (os.path.abspath(path), file_size, mtime_ns, crc)
    if verified_key not in _verified_bodies:
        if _checksum_body(path) != crc:
            raise SnapshotIntegrityError("%s: snapshot checksum mismatch (corrupted)" % path)
        _verified_bodies[verified_key] = True
    return header, payload_base, crc


def _map_section(path: str, payload_base: int, meta: Dict) -> np.ndarray:
    dtype = _DTYPES.get(meta["dtype"])
    if dtype is None:
        raise SnapshotFormatError("%s: unknown section dtype %r" % (path, meta["dtype"]))
    count = int(meta["count"])
    if count == 0:
        return np.empty(0, dtype=dtype)
    return np.memmap(
        path, mode="r", dtype=dtype, offset=payload_base + int(meta["offset"]), shape=(count,)
    )


class StoreSnapshot:
    """A loaded snapshot: the memory-mapped store plus its header metadata."""

    def __init__(self, path: str, store: TripleStore, header: Dict):
        self.path = path
        self.store = store
        self.header = header

    @property
    def fingerprint(self) -> Optional[str]:
        """The saver-provided identity string (``None`` when not recorded)."""
        return self.header.get("fingerprint")

    def statistics(self) -> Optional[StoreStatistics]:
        """The persisted statistics, rebuilt warm over the loaded store.

        Returns ``None`` when the snapshot was saved without statistics.
        The payload is keyed by ``data_version``; a mismatch (which cannot
        happen for an unmutated snapshot) falls back to ``None`` so the
        caller re-collects instead of serving stale estimates.
        """
        payload = self.header.get("statistics")
        if not payload or payload.get("data_version") != self.store.data_version:
            return None
        return StoreStatistics.from_persisted(self.store, payload)

    def __repr__(self) -> str:
        return "StoreSnapshot(%r, triples=%d, terms=%d)" % (
            self.path,
            self.header["triples"],
            self.header["terms"],
        )


def verify_snapshot(path: str) -> Dict:
    """Validate ``path`` (preamble, header, size, CRC) without loading it.

    Returns the header dict.  The successful CRC scan lands in the
    per-process verified-bodies cache, so later :func:`load_snapshot` calls
    in this process — **and in forked children, which inherit the cache** —
    skip the O(file size) checksum read.  The prefork worker pool calls
    this once in the parent before forking, so N workers mapping the same
    snapshot pay for exactly one verification pass between them.
    """
    header, _payload_base, _crc = _read_header(path)
    return header


def load_snapshot(path: str) -> StoreSnapshot:
    """Load a snapshot zero-copy: mmap the index columns, decode terms lazily.

    Raises :class:`SnapshotFormatError` for non-snapshots and unsupported
    format versions, :class:`SnapshotIntegrityError` for truncated or
    corrupted files.
    """
    header, payload_base, _crc = _read_header(path)
    sections = header["sections"]

    def mapped(name: str) -> np.ndarray:
        meta = sections.get(name)
        if meta is None:
            raise SnapshotFormatError("%s: snapshot is missing section %r" % (path, name))
        return _map_section(path, payload_base, meta)

    dictionary = LazyTermDictionary(
        mapped("dictionary/kinds"), mapped("dictionary/offsets"), mapped("dictionary/blob")
    )
    store = TripleStore()
    store.dictionary = dictionary
    for name in PERMUTATIONS:
        columns = tuple(mapped("index/%s/%d" % (name, slot)) for slot in range(3))
        store._indexes[name].adopt_sorted_columns(columns)
    store._size = int(header["triples"])
    store._pending = []
    store._loaded = True
    store._version = int(header["data_version"])
    store.snapshot_path = path
    store._publish()
    return StoreSnapshot(path, store, header)
