"""Immutable-base + delta-overlay storage for MVCC snapshot isolation.

SPARQL 1.1 Update turns the store into a shared mutable resource, and the
concurrent :class:`~repro.service.service.QueryService` cannot afford either
torn reads (a scan observing three of six indexes updated) or writer-blocks-
readers locking.  The classic differential-index answer (RDF-3X and friends)
is implemented here:

* the **base** stays what it always was — six sorted, possibly mmap-adopted
  :class:`~repro.store.indexes.PermutationIndex` column triples that are
  never written in place;
* every committed update produces a fresh, immutable :class:`DeltaState`
  describing the net ``added`` / ``removed`` id-triples relative to that
  base, with a monotonically increasing ``epoch``;
* readers pin one ``(base, delta-epoch)`` pair at query start (see
  :meth:`~repro.store.triple_store.TripleStore.reader`) and keep answering
  from it no matter how many updates commit afterwards — an open Cursor or
  an in-flight chunked HTTP stream drains exactly the result it started;
* **merging happens by folding**: the first scan that touches a permutation
  under a given delta builds a private merged index (base rows minus
  ``removed`` plus ``added``, still one sorted column triple) and caches it
  on the DeltaState.  Every existing read path — prefix ranges, packed-key
  probes, morsel splitting, distinct counts — then runs unchanged over the
  merged index, which makes post-update results *bit-identical by
  construction* to a store freshly built with the updated triple set;
* **compaction** (threshold- or explicitly-triggered) folds the delta into
  six fresh base indexes off the read path and swaps them in atomically;
  visible data is unchanged, so ``data_version`` does not move and every
  cache stays valid.

Invariants maintained by the writer (single writer lock, see TripleStore):
``added`` is disjoint from the base, ``removed`` is a subset of the base,
and ``added`` and ``removed`` are disjoint from each other — so the merged
cardinality is exactly ``len(base) - len(removed) + len(added)``.
"""

from __future__ import annotations

import threading
from typing import Dict, FrozenSet, Optional, Sequence, Tuple

import numpy as np

from .indexes import PACK_LIMIT, PermutationIndex

IdTriple = Tuple[int, int, int]

_EMPTY_ROWS = np.empty((0, 3), dtype=np.int64)


def _as_rows(triples: FrozenSet[IdTriple]) -> np.ndarray:
    """A canonically sorted ``(n, 3)`` int64 array of a small triple set."""
    if not triples:
        return _EMPTY_ROWS
    rows = np.asarray(sorted(triples), dtype=np.int64).reshape(-1, 3)
    return rows


def _key_position(
    columns: Tuple[np.ndarray, np.ndarray, np.ndarray], key: Sequence[int]
) -> int:
    """Leftmost position of (or insertion point for) ``key`` in sorted columns."""
    low, high = 0, int(columns[0].shape[0])
    for depth in range(3):
        segment = columns[depth][low:high]
        left = int(np.searchsorted(segment, key[depth], side="left"))
        right = int(np.searchsorted(segment, key[depth], side="right"))
        low, high = low + left, low + right
        if low >= high:
            return low
    return low


def _key_positions(
    columns: Tuple[np.ndarray, np.ndarray, np.ndarray], key_rows: np.ndarray
) -> np.ndarray:
    """Insertion points of sorted ``key_rows`` in the sorted ``columns``.

    Packs both sides into order-preserving int64 scalars so the whole batch
    is two multiplies and one vectorized ``searchsorted`` (the same packing
    scheme as :meth:`PermutationIndex.packed_prefix`, but with maxima taken
    over columns *and* probes, since inserted keys may carry fresh ids).
    Falls back to per-row hierarchical binary search when the id range
    cannot pack without overflowing ``PACK_LIMIT``.
    """
    maxima = []
    for slot in range(3):
        high = int(columns[slot].max()) if columns[slot].shape[0] else 0
        if key_rows.shape[0]:
            high = max(high, int(key_rows[:, slot].max()))
        maxima.append(high)
    m1 = maxima[2] + 1
    m0 = m1 * (maxima[1] + 1)
    if m0 * (maxima[0] + 1) < PACK_LIMIT:
        packed = columns[0] * m0 + columns[1] * m1 + columns[2]
        probes = key_rows[:, 0] * m0 + key_rows[:, 1] * m1 + key_rows[:, 2]
        return np.searchsorted(packed, probes, side="left")
    return np.asarray(
        [_key_position(columns, tuple(int(v) for v in row)) for row in key_rows],
        dtype=np.int64,
    )


def _permuted_sorted(base: PermutationIndex, rows: np.ndarray) -> np.ndarray:
    """Canonical SPO rows permuted into ``base``'s key order and sorted."""
    keys = rows[:, list(base.positions)]
    return keys[np.lexsort((keys[:, 2], keys[:, 1], keys[:, 0]))]


def fold_index(
    base: PermutationIndex,
    added: np.ndarray,
    removed: np.ndarray,
) -> PermutationIndex:
    """Build the merged index: base rows minus ``removed`` plus ``added``.

    The base columns are never written — removal and insertion go through
    ``np.delete`` / ``np.insert``, which produce fresh private arrays, so a
    base adopted zero-copy from an mmap'd snapshot stays pristine on disk
    and in every other reader's hands.  Positions come from one packed
    ``searchsorted`` per side, so the cost is O(base + delta) vectorized
    work — cheap enough that compaction is just this fold promoted to base.
    """
    columns = base.columns()
    if removed.shape[0]:
        keys = _permuted_sorted(base, removed)
        positions = _key_positions(columns, keys)
        columns = tuple(np.delete(column, positions) for column in columns)
    if added.shape[0]:
        keys = _permuted_sorted(base, added)
        positions = _key_positions(columns, keys)
        columns = tuple(
            np.insert(column, positions, keys[:, slot])
            for slot, column in enumerate(columns)
        )
    merged = PermutationIndex(base.name)
    merged.adopt_sorted_columns(tuple(np.ascontiguousarray(c) for c in columns))
    return merged


class DeltaState:
    """One immutable epoch of the delta overlay.

    ``added`` / ``removed`` are frozensets of canonical (s, p, o) id
    triples; merged per-permutation indexes are folded lazily on first use
    and cached here, so they live and die with the epoch — a pinned reader
    keeps its epoch (and therefore its folded indexes) alive for as long
    as it streams.
    """

    __slots__ = ("added", "removed", "epoch", "_added_rows", "_removed_rows", "_folded", "_lock")

    def __init__(
        self,
        added: FrozenSet[IdTriple] = frozenset(),
        removed: FrozenSet[IdTriple] = frozenset(),
        epoch: int = 0,
    ):
        self.added = frozenset(added)
        self.removed = frozenset(removed)
        self.epoch = epoch
        self._added_rows: Optional[np.ndarray] = None
        self._removed_rows: Optional[np.ndarray] = None
        self._folded: Dict[str, PermutationIndex] = {}
        self._lock = threading.Lock()

    def __len__(self) -> int:
        """Triples the overlay tracks (added + removed) — the compaction gauge."""
        return len(self.added) + len(self.removed)

    @property
    def empty(self) -> bool:
        return not self.added and not self.removed

    def net_growth(self) -> int:
        return len(self.added) - len(self.removed)

    def merged_index(self, base: PermutationIndex) -> PermutationIndex:
        """The folded view of ``base`` under this delta (cached per epoch).

        An empty delta returns ``base`` itself — the common read-only case
        costs nothing.
        """
        if self.empty:
            return base
        folded = self._folded.get(base.name)
        if folded is not None:
            return folded
        with self._lock:
            folded = self._folded.get(base.name)
            if folded is None:
                if self._added_rows is None:
                    self._added_rows = _as_rows(self.added)
                    self._removed_rows = _as_rows(self.removed)
                folded = fold_index(base, self._added_rows, self._removed_rows)
                self._folded[base.name] = folded
        return folded

    def __repr__(self) -> str:
        return "DeltaState(epoch=%d, added=%d, removed=%d)" % (
            self.epoch,
            len(self.added),
            len(self.removed),
        )
