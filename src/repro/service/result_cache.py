"""Materialized answer cache: id-space result caching + materialized views.

The plan cache (PR 1) amortizes *optimization*; nothing amortizes
*execution* — the paper's E-experiments run hot templates under heavy
parameter skew, exactly the workload where the same plan re-executes the
same join pipeline over and over.  :class:`ResultCache` closes that gap:

* **Id space storage.**  Entries hold the executed plan's final
  :class:`~repro.engine.vector.ColumnBatch` (int64 dictionary-id columns)
  plus the extension-id side table of the producing execution, *not*
  decoded rows.  Terms decode per request, so pagination, LIMIT/OFFSET
  pushdown and the HTTP layer's JSON/CSV/TSV negotiation all compose with
  cached entries unchanged — a hit is O(decode), never O(join).
* **Keying and invalidation.**  The key is ``(plan fingerprint,
  data_version)``.  :meth:`~repro.optimizer.plans.PlanNode.fingerprint`
  includes every constant (two bindings of one template never alias);
  any ``TripleStore.insert``/``remove`` bumps ``data_version``, making
  every stale entry unreachable immediately and sweepable lazily.
* **Single-flight fills.**  Concurrent misses on one key coalesce onto a
  single execution (the :class:`~repro.service.plan_cache.PlanCache`
  idiom): one client runs the pipeline, the others block and decode from
  the same entry — even when admission declines to retain it.
* **Admission and eviction.**  A byte budget with LRU eviction; entries
  are admitted by a cost-vs-size heuristic (executed work units per KiB),
  so cheap-to-recompute bulky results don't wash out expensive ones.
* **Bit-identical serving.**  A hit reuses the producing execution's
  profile and recomputes the simulated runtime from the caller's noise
  key, so rows, profiles, Cout values and runtimes are identical with the
  cache on or off — caching can only change the wall clock.

:class:`MaterializedView` extends the same storage idiom to *declared*
sub-patterns: the optimizer substitutes a
:class:`~repro.optimizer.plans.CachedViewNode` wherever a registered
view's fingerprint appears inside a plan, and both executors serve the
subtree from the materialized batch (or execute it unchanged on a miss).
"""

from __future__ import annotations

import threading
from collections import Counter, OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..engine.executor import ExecutionProfile
from ..engine.query_engine import RowStream
from ..engine.vector import NULL_ID, ColumnBatch
from ..obs.registry import MetricsRegistry
from ..optimizer.plans import (
    AggregateNode,
    CachedViewNode,
    DistinctNode,
    ExtendNode,
    JoinNode,
    LeftJoinNode,
    LimitNode,
    PlanNode,
    ProjectNode,
    ScanNode,
    SortNode,
    UnionNode,
    cached_fingerprint,
)
from ..rdf.terms import Term

#: Cache key: (canonical plan fingerprint, store data_version).
ResultKey = Tuple[str, int]

#: Bookkeeping bytes charged per entry beyond its column payload.
ENTRY_OVERHEAD_BYTES = 512

#: Rough bytes charged per captured extension-id term (interned literals).
EXTENSION_TERM_BYTES = 128

#: No single entry may occupy more than this fraction of the byte budget.
MAX_ENTRY_FRACTION = 4

#: Default admission bar: executed work units per KiB of entry payload.
#: Results this cheap to recompute relative to their footprint (straight
#: dumps of a scan, empty results) are served but not retained.
DEFAULT_MIN_WORK_PER_KIB = 1.0


def _detach_batch(batch: ColumnBatch) -> ColumnBatch:
    """A self-owned copy of ``batch`` (no views into store mmaps)."""
    columns = {
        variable: np.ascontiguousarray(column)
        for variable, column in batch.columns.items()
    }
    return ColumnBatch(list(batch.variables), columns, batch.length, batch.nullable)


def _detach_profile(profile: ExecutionProfile) -> ExecutionProfile:
    """A tracer-free copy of ``profile`` safe to retain and re-serve."""
    detached = ExecutionProfile()
    detached.node_output_rows = dict(profile.node_output_rows)
    detached.work = Counter(profile.work)
    detached.intermediate_sizes = list(profile.intermediate_sizes)
    detached.result_rows = profile.result_rows
    return detached


class _InflightFill:
    """One fill in progress; same-key clients wait on ``ready``."""

    __slots__ = ("ready", "entry")

    def __init__(self):
        self.ready = threading.Event()
        self.entry: Optional["CacheEntry"] = None


class CacheEntry:
    """One cached result: the id-space batch plus what serving needs.

    ``plan`` is the producing plan object — hits build their
    :class:`~repro.engine.query_engine.RowStream` around it so
    ``actual_cout`` (keyed by node identity) stays exact.  ``profile`` is
    the *pre-output* execution profile: no ``output_tuple`` work and no
    ``result_rows`` yet, because those depend on the request's
    LIMIT/OFFSET slice and are added per response.
    """

    __slots__ = (
        "plan",
        "batch",
        "extension_terms",
        "profile",
        "byte_size",
        "work_units",
        "estimated_cout",
        "actual_cout",
    )

    def __init__(
        self,
        plan: PlanNode,
        batch: ColumnBatch,
        extension_terms: Dict[int, Term],
        profile: ExecutionProfile,
    ):
        self.plan = plan
        self.batch = _detach_batch(batch)
        self.extension_terms = dict(extension_terms)
        self.profile = _detach_profile(profile)
        self.byte_size = (
            ENTRY_OVERHEAD_BYTES
            + sum(column.nbytes for column in self.batch.columns.values())
            + len(self.extension_terms) * EXTENSION_TERM_BYTES
        )
        self.work_units = profile.total_tuples_processed()
        # Both Cout figures are invariant across requests of this entry
        # (LIMIT/OFFSET modifiers are transparent to Cout by the paper's
        # definition), so hits skip the two plan-tree walks per response.
        self.estimated_cout = plan.estimated_cout()
        self.actual_cout = self.profile.actual_cout(plan)


@dataclass(frozen=True)
class ResultCacheStats:
    """Snapshot of the cache counters at one point in time."""

    budget_bytes: int
    bytes_resident: int
    entries: int
    hits: int
    misses: int
    insertions: int
    evictions: int
    rejected: int
    invalidated: int

    def lookups(self) -> int:
        return self.hits + self.misses

    def hit_rate(self) -> float:
        lookups = self.lookups()
        return self.hits / lookups if lookups else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "result cache budget bytes": self.budget_bytes,
            "result cache bytes resident": self.bytes_resident,
            "result cache entries": self.entries,
            "result cache hits": self.hits,
            "result cache misses": self.misses,
            "result cache evictions": self.evictions,
            "result cache rejected": self.rejected,
            "result cache invalidated": self.invalidated,
            "result cache hit rate": self.hit_rate(),
        }


class ResultCache:
    """Memory-budgeted LRU cache of executed id-space results.

    Attach to an engine via ``QueryEngine.with_result_cache``; the engine
    consults it from ``execute_plan_iter`` whenever the vector executor
    runs (the tuple executor materialises rows, not id batches, so it
    executes unchanged — results are identical either way by the
    executor-equivalence contract).
    """

    def __init__(
        self,
        budget_bytes: int,
        min_work_per_kib: float = DEFAULT_MIN_WORK_PER_KIB,
    ):
        if budget_bytes <= 0:
            raise ValueError("result cache budget must be positive, got %d" % budget_bytes)
        self.budget_bytes = int(budget_bytes)
        self.min_work_per_kib = float(min_work_per_kib)
        self._entries: "OrderedDict[ResultKey, CacheEntry]" = OrderedDict()
        self._inflight: Dict[ResultKey, _InflightFill] = {}
        self._lock = threading.Lock()
        self._bytes_resident = 0
        self._swept_version: Optional[int] = None
        #: the cache's own instruments; the server and the prefork pool
        #: merge this registry into their /metrics expositions and dumps.
        self.registry = MetricsRegistry()
        self._hits = self.registry.counter(
            "repro_result_cache_hits_total", "Result cache lookups served from cache"
        )
        self._misses = self.registry.counter(
            "repro_result_cache_misses_total", "Result cache lookups that executed the plan"
        )
        self._insertions = self.registry.counter(
            "repro_result_cache_insertions_total", "Entries admitted into the result cache"
        )
        self._evictions = self.registry.counter(
            "repro_result_cache_evictions_total", "Entries evicted by the LRU byte budget"
        )
        self._rejected = self.registry.counter(
            "repro_result_cache_rejected_total",
            "Entries declined by the admission heuristic (size or cost-per-byte)",
        )
        self._invalidated = self.registry.counter(
            "repro_result_cache_invalidated_total",
            "Entries dropped because the store data_version moved past them",
        )
        self.registry.gauge(
            "repro_result_cache_bytes_resident",
            "Bytes of id-space result payload currently resident",
            callback=self.bytes_resident,
        )
        self.registry.gauge(
            "repro_result_cache_entries",
            "Entries currently resident in the result cache",
            callback=self.__len__,
        )

    # -- serving -----------------------------------------------------------------

    def serve(
        self,
        engine,
        plan: PlanNode,
        noise_key: str = "",
        page_size: Optional[int] = None,
        tracer=None,
        limit: Optional[int] = None,
        offset: int = 0,
    ) -> RowStream:
        """Serve one execution through the cache (consult-and-fill).

        The engine calls this instead of running the executor directly.
        ``plan`` must be the *unsliced* plan — the request's
        ``limit``/``offset`` are applied to the cached batch in id space,
        so every slice of one result shares a single cached execution.
        """
        version = engine.store.data_version
        key = (cached_fingerprint(plan), version)
        while True:
            wait_for: Optional[_InflightFill] = None
            with self._lock:
                self._sweep_locked(version)
                entry = self._entries.get(key)
                if entry is not None:
                    self._entries.move_to_end(key)
                    self._hits.inc()
                    return self._respond(
                        engine, entry, noise_key, page_size, tracer, limit, offset, hit=True
                    )
                wait_for = self._inflight.get(key)
                if wait_for is None:
                    self._inflight[key] = _InflightFill()
            if wait_for is None:
                self._misses.inc()
                break  # we are the builder
            wait_for.ready.wait()
            if wait_for.entry is not None:
                self._hits.inc()
                return self._respond(
                    engine, wait_for.entry, noise_key, page_size, tracer, limit, offset, hit=True
                )
            # The fill we waited on failed; retry from the top.

        try:
            entry = self._build(engine, plan, tracer, limit, offset)
        except BaseException:
            self._finish_fill(key, None)
            raise
        self._admit(key, entry, version)
        self._finish_fill(key, entry)
        return self._respond(
            engine, entry, noise_key, page_size, tracer, limit, offset, hit=False
        )

    def _build(self, engine, plan: PlanNode, tracer, limit, offset) -> CacheEntry:
        """Execute ``plan`` for real and wrap the outcome as an entry.

        The caller's tracer records the genuine operator spans — including
        the LIMIT span the cache-off path would have as its root — so a
        traced miss is indistinguishable from an uncached execution.
        """
        executor = engine.executor
        span = None
        if tracer is not None and (limit is not None or offset):
            span = tracer.enter(LimitNode(plan, limit, offset))
        try:
            batch, extension_terms, profile = executor.execute_batch(plan, tracer=tracer)
        except BaseException:
            if span is not None:
                tracer.exit(span, None)
            raise
        if span is not None:
            end = None if limit is None else offset + limit
            sliced = len(range(*slice(offset, end).indices(batch.length)))
            tracer.exit(span, sliced)
        return CacheEntry(plan, batch, extension_terms, profile)

    def _respond(
        self,
        engine,
        entry: CacheEntry,
        noise_key: str,
        page_size: Optional[int],
        tracer,
        limit: Optional[int],
        offset: int,
        hit: bool,
    ) -> RowStream:
        """Shape one response from an entry: slice, profile, runtime, pages.

        Both hits and the builder's own response come through here, so the
        two are identical by construction; the simulated runtime is
        recomputed from the *caller's* noise key exactly as an uncached
        execution would.
        """
        plan = entry.plan
        batch = entry.batch
        profile = _detach_profile(entry.profile)
        if limit is not None or offset:
            limit_node = LimitNode(plan, limit, offset)
            end = None if limit is None else offset + limit
            batch = batch.take(slice(offset, end))
            profile.record_output(limit_node, batch.length)
            plan = limit_node
        profile.result_rows = batch.length
        profile.add_work("output_tuple", batch.length)
        runtime = engine.runtime_model.runtime_milliseconds(profile, noise_key)
        pages = engine.executor.pages_for(batch, entry.extension_terms, page_size)
        stream = RowStream(
            pages,
            plan,
            profile,
            runtime,
            estimated_cout=entry.estimated_cout,
            actual_cout=entry.actual_cout,
        )
        stream.result_cached = hit
        if tracer is not None:
            if hit:
                # A hit never enters the operator pipeline; give the trace
                # a single root span over the served plan.
                span = tracer.enter(plan)
                tracer.exit(span, batch.length)
            stream.trace = tracer.finish(
                result_rows=profile.result_rows,
                runtime_ms=runtime,
                executor=engine.executor_name,
                parallelism=engine.parallelism,
                result_cache="hit" if hit else "miss",
            )
        return stream

    # -- admission / eviction / invalidation ---------------------------------------

    def _admit(self, key: ResultKey, entry: CacheEntry, version: int) -> None:
        if not self._admissible(entry):
            self._rejected.inc()
            return
        with self._lock:
            self._sweep_locked(version)
            if key in self._entries:
                self._entries.move_to_end(key)
                return
            self._entries[key] = entry
            self._bytes_resident += entry.byte_size
            self._insertions.inc()
            while self._bytes_resident > self.budget_bytes and self._entries:
                _evicted_key, evicted = self._entries.popitem(last=False)
                self._bytes_resident -= evicted.byte_size
                self._evictions.inc()

    def _admissible(self, entry: CacheEntry) -> bool:
        if entry.byte_size > self.budget_bytes // MAX_ENTRY_FRACTION:
            return False
        work_per_kib = entry.work_units / (entry.byte_size / 1024.0)
        return work_per_kib >= self.min_work_per_kib

    def _sweep_locked(self, version: int) -> None:
        """Drop entries stranded behind ``version`` (store was mutated)."""
        if self._swept_version == version:
            return
        self._swept_version = version
        stale = [key for key in self._entries if key[1] != version]
        for key in stale:
            entry = self._entries.pop(key)
            self._bytes_resident -= entry.byte_size
            self._invalidated.inc()

    def _finish_fill(self, key: ResultKey, entry: Optional[CacheEntry]) -> None:
        """Publish the outcome of an in-flight fill and wake the waiters."""
        with self._lock:
            fill = self._inflight.pop(key, None)
        if fill is not None:
            fill.entry = entry
            fill.ready.set()

    # -- introspection -----------------------------------------------------------

    def bytes_resident(self) -> int:
        with self._lock:
            return self._bytes_resident

    def stats(self) -> ResultCacheStats:
        with self._lock:
            entries = len(self._entries)
            resident = self._bytes_resident
        return ResultCacheStats(
            budget_bytes=self.budget_bytes,
            bytes_resident=resident,
            entries=entries,
            hits=int(self._hits.total()),
            misses=int(self._misses.total()),
            insertions=int(self._insertions.total()),
            evictions=int(self._evictions.total()),
            rejected=int(self._rejected.total()),
            invalidated=int(self._invalidated.total()),
        )

    def keys(self) -> List[ResultKey]:
        """Currently resident keys in LRU order (oldest first)."""
        with self._lock:
            return list(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes_resident = 0
            self._swept_version = None

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:
        stats = self.stats()
        return "ResultCache(entries=%d, bytes=%d/%d, hits=%d, misses=%d)" % (
            stats.entries,
            stats.bytes_resident,
            stats.budget_bytes,
            stats.hits,
            stats.misses,
        )


# -- materialized views --------------------------------------------------------------


class MaterializedView:
    """One declared view: a plan subtree materialized as an id-space batch.

    The batch is keyed by the store ``data_version`` that produced it — a
    mutation makes the view refill on its next execution, never serve
    stale rows.  Fills refuse batches carrying extension ids (BIND or
    aggregate outputs survive only inside the query that allocated them);
    such subtrees simply execute unchanged every time.
    """

    def __init__(self, name: str, plan: PlanNode):
        self.name = name
        self.plan = plan
        self.fingerprint = plan.fingerprint()
        self._lock = threading.Lock()
        self._version: Optional[int] = None
        self._batch: Optional[ColumnBatch] = None
        self.hits = 0
        self.misses = 0
        self.refusals = 0

    def lookup(self, data_version: int) -> Optional[ColumnBatch]:
        """The materialized batch for ``data_version``, or None (stale/cold)."""
        with self._lock:
            if self._version == data_version and self._batch is not None:
                self.hits += 1
                return self._batch
            self.misses += 1
            return None

    def fill(self, data_version: int, batch: ColumnBatch) -> bool:
        """Retain ``batch`` as the view's answer for ``data_version``."""
        for variable in batch.variables:
            column = batch.columns[variable]
            if column.size and int(column.min()) < NULL_ID:
                with self._lock:
                    self.refusals += 1
                return False
        detached = _detach_batch(batch)
        with self._lock:
            self._version = data_version
            self._batch = detached
        return True

    def refuse(self) -> None:
        """Count a fill the producer abandoned (unencodable terms)."""
        with self._lock:
            self.refusals += 1

    def byte_size(self) -> int:
        with self._lock:
            if self._batch is None:
                return 0
            return sum(column.nbytes for column in self._batch.columns.values())

    def stats(self) -> Dict[str, float]:
        with self._lock:
            return {
                "name": self.name,
                "hits": self.hits,
                "misses": self.misses,
                "refusals": self.refusals,
                "bytes": sum(
                    column.nbytes for column in self._batch.columns.values()
                ) if self._batch is not None else 0,
                "materialized": self._batch is not None,
            }

    def __repr__(self) -> str:
        return "MaterializedView(%r, hits=%d, misses=%d)" % (self.name, self.hits, self.misses)


#: Solution modifiers stripped from a registered view's plan: a view
#: materializes the join part, the part bindings share.
_MODIFIER_NODES = (ProjectNode, DistinctNode, LimitNode, SortNode, ExtendNode, AggregateNode)


class MaterializedViewRegistry:
    """Declared views, keyed by subtree fingerprint, consulted per optimize.

    Attached to the optimizer (``Optimizer.views``); after join ordering,
    every subtree whose fingerprint matches a registered view is wrapped
    in a :class:`~repro.optimizer.plans.CachedViewNode`.  Fingerprints
    include constants, so a view matches exactly the recurring
    *non-parameterized* subpatterns (the E4 histogram's repeated join
    groups), never a different binding of a similar shape.
    """

    def __init__(self):
        self._views: "OrderedDict[str, MaterializedView]" = OrderedDict()
        self._lock = threading.Lock()

    def register(self, name: str, plan: PlanNode) -> MaterializedView:
        """Declare ``plan``'s join subtree as a view named ``name``."""
        while isinstance(plan, _MODIFIER_NODES):
            plan = plan.child
        if isinstance(plan, (ScanNode, CachedViewNode)):
            raise ValueError(
                "a materialized view must cover a join subtree, not a single "
                "scan or another view (got %s)" % plan.describe()
            )
        view = MaterializedView(name, plan)
        with self._lock:
            self._views[view.fingerprint] = view
        return view

    def views(self) -> List[MaterializedView]:
        with self._lock:
            return list(self._views.values())

    def __len__(self) -> int:
        with self._lock:
            return len(self._views)

    def substitute(self, plan: PlanNode) -> PlanNode:
        """Wrap every registered subtree of a freshly optimized plan.

        Rewrites child links in place (the optimizer hands over a fresh
        tree per call).  The direct right side of an index-lookup join is
        left alone — that operator probes a scan through the permutation
        indexes and never materialises its right side.
        """
        with self._lock:
            if not self._views:
                return plan
            views = dict(self._views)

        def rewrite(node: PlanNode, lookup_right: bool = False) -> PlanNode:
            if isinstance(node, CachedViewNode):
                return node
            if not lookup_right and not isinstance(node, ScanNode):
                view = views.get(node.fingerprint())
                if view is not None:
                    return CachedViewNode(view, node)
            if isinstance(node, JoinNode):
                node.left = rewrite(node.left)
                node.right = rewrite(node.right, lookup_right=node.method == JoinNode.LOOKUP)
            elif isinstance(node, LeftJoinNode):
                node.left = rewrite(node.left)
                node.right = rewrite(node.right)
            elif isinstance(node, UnionNode):
                node.alternatives = [rewrite(child) for child in node.alternatives]
            elif node.children():
                node.child = rewrite(node.child)
            return node

        return rewrite(plan)

    def stats(self) -> List[Dict[str, float]]:
        return [view.stats() for view in self.views()]
