"""Serving metrics.

The collector observes every execution the service performs and aggregates
the numbers an operator of a query-serving system watches: throughput (QPS,
from real wall-clock time) and the latency distribution (p50 / p95 / p99,
over the *simulated* runtimes so that the figures stay deterministic and
comparable with everything else the reproduction reports).

Since the observability PR the collector is backed by a
:class:`repro.obs.MetricsRegistry` — the executed-query counter, the
latency histogram and the scrape-time QPS/percentile gauges are first-class
instruments, so the HTTP endpoint exposes them in Prometheus text format
next to its own request counters.  The exact-percentile snapshot path is
unchanged: :meth:`snapshot` still computes over the full latency list, and
:func:`repro.bench.reporting.service_report` renders the same keys as
before.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..bench.stats import mean, percentile
from ..obs.registry import LATENCY_BUCKETS_MS, MetricsRegistry

#: Bucket bounds for compaction durations (seconds).  Compacting folds the
#: delta into fresh sorted columns — milliseconds for the small deltas the
#: auto-compaction threshold allows, so the buckets lean low.
COMPACTION_BUCKETS_S = (0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0)


@dataclass(frozen=True)
class ServiceMetrics:
    """Snapshot of everything the collector observed."""

    executed: int
    wall_clock_seconds: float
    qps: float
    latency_mean_ms: float
    latency_p50_ms: float
    latency_p95_ms: float
    latency_p99_ms: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "executed queries": self.executed,
            "wall clock seconds": self.wall_clock_seconds,
            "QPS": self.qps,
            "latency mean (ms)": self.latency_mean_ms,
            "latency p50 (ms)": self.latency_p50_ms,
            "latency p95 (ms)": self.latency_p95_ms,
            "latency p99 (ms)": self.latency_p99_ms,
        }


class MetricsCollector:
    """Thread-safe accumulator of per-execution and per-batch observations."""

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        self._lock = threading.Lock()
        self._latencies_ms: List[float] = []
        #: wall-clock seconds of executions issued outside any batch (summed;
        #: batched executions are covered by their batch's wall time instead).
        self._unbatched_busy_seconds = 0.0
        #: wall-clock seconds of scheduler batches (overlapping executions
        #: counted once — the correct denominator for concurrent QPS).
        self._batch_seconds = 0.0
        #: the registry exposing these observations as Prometheus families.
        self.registry = registry if registry is not None else MetricsRegistry()
        self._executed = self.registry.counter(
            "repro_queries_executed_total", "Queries executed by the service"
        )
        self._latency = self.registry.histogram(
            "repro_query_latency_ms",
            "Simulated query latency distribution (milliseconds)",
            buckets=LATENCY_BUCKETS_MS,
        )
        self._busy = self.registry.counter(
            "repro_service_busy_seconds_total",
            "Wall-clock seconds spent executing queries (batches counted once)",
        )
        # Scrape-time gauges: exact values computed from the latency list at
        # exposition, so the text format matches snapshot() to the digit.
        self.registry.gauge(
            "repro_service_qps", "Queries per wall-clock second", callback=lambda: self.snapshot().qps
        )
        self.registry.gauge(
            "repro_service_latency_p50_ms",
            "Median simulated latency (milliseconds)",
            callback=lambda: self.snapshot().latency_p50_ms,
        )
        self.registry.gauge(
            "repro_service_latency_p99_ms",
            "99th-percentile simulated latency (milliseconds)",
            callback=lambda: self.snapshot().latency_p99_ms,
        )
        # Mutation instruments (SPARQL Update).  The delta-size and
        # compaction-count gauges live on the service (they read store
        # state); these record what flowed through the update path itself.
        self._updates = self.registry.counter(
            "repro_updates_total", "SPARQL update requests committed by the service"
        )
        self._updates_inserted = self.registry.counter(
            "repro_update_triples_inserted_total", "Triples inserted by update requests"
        )
        self._updates_deleted = self.registry.counter(
            "repro_update_triples_deleted_total", "Triples deleted by update requests"
        )
        self._compaction_duration = self.registry.histogram(
            "repro_compaction_duration_seconds",
            "Delta-overlay compaction duration (seconds)",
            buckets=COMPACTION_BUCKETS_S,
        )

    # -- recording ----------------------------------------------------------------

    def record_update(self, inserted: int, deleted: int) -> None:
        """Count one committed update request and its effective changes."""
        self._updates.inc()
        if inserted:
            self._updates_inserted.inc(inserted)
        if deleted:
            self._updates_deleted.inc(deleted)

    def record_compaction(self, seconds: float) -> None:
        """Observe one delta-overlay compaction's duration."""
        self._compaction_duration.observe(seconds)

    def record_execution(self, runtime_ms: float, wall_seconds: float, in_batch: bool = False) -> None:
        with self._lock:
            self._latencies_ms.append(runtime_ms)
            if not in_batch:
                self._unbatched_busy_seconds += wall_seconds
        self._executed.inc()
        self._latency.observe(runtime_ms)
        if not in_batch:
            self._busy.inc(wall_seconds)

    def record_batch(self, wall_seconds: float) -> None:
        with self._lock:
            self._batch_seconds += wall_seconds
        self._busy.inc(wall_seconds)

    def reset(self) -> None:
        with self._lock:
            self._latencies_ms = []
            self._unbatched_busy_seconds = 0.0
            self._batch_seconds = 0.0
        self._executed.clear()
        self._latency.clear()
        self._busy.clear()

    # -- snapshot -----------------------------------------------------------------

    def snapshot(self) -> ServiceMetrics:
        with self._lock:
            latencies = list(self._latencies_ms)
            wall = self._batch_seconds + self._unbatched_busy_seconds
        executed = len(latencies)
        return ServiceMetrics(
            executed=executed,
            wall_clock_seconds=wall,
            qps=executed / wall if wall > 0 else 0.0,
            latency_mean_ms=mean(latencies) if latencies else 0.0,
            latency_p50_ms=percentile(latencies, 0.50) if latencies else 0.0,
            latency_p95_ms=percentile(latencies, 0.95) if latencies else 0.0,
            latency_p99_ms=percentile(latencies, 0.99) if latencies else 0.0,
        )
