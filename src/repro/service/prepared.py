"""Prepared query templates.

The naive execution path repeats, for every single execution, work that
depends only on the template: tokenize + parse (already amortized by
:class:`~repro.sparql.template.QueryTemplate`) and the AST → algebra
translation.  A :class:`PreparedTemplate` performs the translation exactly
once, keeping the ``%param`` placeholders embedded in the algebra tree, and
instantiates a binding by substituting terms directly into a structural copy
of that tree — no reparse, no retranslation.

Structure preservation is what makes this safe: parameter substitution never
changes *which* algebra nodes exist (a parameter is always a term inside a
triple pattern or expression), so substituting before or after translation
yields the same logical plan, and therefore the same optimized physical
plan.  ``tests/test_service.py`` asserts this equivalence against the naive
path.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Mapping, Optional, Tuple

from ..rdf.terms import Term
from ..rdf.triples import TriplePattern
from ..sparql import algebra
from ..sparql.ast import OrderCondition, SelectQuery
from ..sparql.template import (
    MissingParameterError,
    QueryTemplate,
    UnknownParameterError,
    substitute_expression,
    substitute_term,
)

ParameterBinding = Mapping[str, Term]


def substitute_algebra(node: algebra.AlgebraNode, bindings: ParameterBinding) -> algebra.AlgebraNode:
    """Return a copy of an algebra tree with every parameter replaced by a term."""
    if isinstance(node, algebra.BGP):
        return algebra.BGP(
            [
                TriplePattern(
                    substitute_term(pattern.subject, bindings),
                    substitute_term(pattern.predicate, bindings),
                    substitute_term(pattern.object, bindings),
                )
                for pattern in node.patterns
            ]
        )
    if isinstance(node, algebra.Join):
        return algebra.Join(
            substitute_algebra(node.left, bindings), substitute_algebra(node.right, bindings)
        )
    if isinstance(node, algebra.LeftJoin):
        condition = (
            substitute_expression(node.condition, bindings) if node.condition is not None else None
        )
        return algebra.LeftJoin(
            substitute_algebra(node.left, bindings),
            substitute_algebra(node.right, bindings),
            condition,
        )
    if isinstance(node, algebra.Union):
        return algebra.Union(
            [substitute_algebra(alternative, bindings) for alternative in node.alternatives]
        )
    if isinstance(node, algebra.Filter):
        return algebra.Filter(
            substitute_expression(node.expression, bindings),
            substitute_algebra(node.child, bindings),
        )
    if isinstance(node, algebra.Extend):
        return algebra.Extend(
            substitute_algebra(node.child, bindings),
            node.variable,
            substitute_expression(node.expression, bindings),
        )
    if isinstance(node, algebra.Group):
        return algebra.Group(
            substitute_algebra(node.child, bindings),
            node.group_variables,
            [
                (variable, substitute_expression(aggregate, bindings))
                for variable, aggregate in node.aggregates
            ],
        )
    if isinstance(node, algebra.OrderBy):
        return algebra.OrderBy(
            substitute_algebra(node.child, bindings),
            [
                OrderCondition(
                    substitute_expression(condition.expression, bindings), condition.descending
                )
                for condition in node.conditions
            ],
        )
    if isinstance(node, algebra.Project):
        return algebra.Project(substitute_algebra(node.child, bindings), node.projected)
    if isinstance(node, algebra.Distinct):
        return algebra.Distinct(substitute_algebra(node.child, bindings))
    if isinstance(node, algebra.Slice):
        return algebra.Slice(substitute_algebra(node.child, bindings), node.limit, node.offset)
    raise TypeError("unsupported algebra node %r" % (node,))


class PreparedTemplate:
    """A query template parsed and translated exactly once."""

    def __init__(self, template: QueryTemplate):
        self.template = template
        self.name = template.name
        self.parameter_names: Tuple[str, ...] = template.parameter_names
        #: the algebra tree with parameters still embedded, built once.
        self.algebra = algebra.translate_query(template.query)
        self._lock = threading.Lock()
        self._substitutions = 0
        self._executions = 0

    # -- instantiation ------------------------------------------------------------

    def _check_bindings(self, bindings: ParameterBinding) -> None:
        unknown = set(bindings) - set(self.parameter_names)
        if unknown:
            raise UnknownParameterError(
                "unknown parameters %s for prepared template %s" % (sorted(unknown), self.name)
            )
        missing = set(self.parameter_names) - set(bindings)
        if missing:
            raise MissingParameterError(
                "missing parameters %s for prepared template %s" % (sorted(missing), self.name)
            )

    def algebra_for(self, bindings: ParameterBinding) -> algebra.AlgebraNode:
        """The fully-bound algebra tree for one binding (no reparse)."""
        self._check_bindings(bindings)
        with self._lock:
            self._substitutions += 1
        return substitute_algebra(self.algebra, bindings)

    def instantiate(self, bindings: ParameterBinding) -> SelectQuery:
        """AST-level instantiation, kept for compatibility with the naive path."""
        return self.template.instantiate(bindings)

    # -- bookkeeping ---------------------------------------------------------------

    def note_execution(self) -> None:
        with self._lock:
            self._executions += 1

    @property
    def substitutions(self) -> int:
        """How many times a binding was substituted into the algebra tree."""
        with self._lock:
            return self._substitutions

    @property
    def executions(self) -> int:
        """How many executions this prepared template served."""
        with self._lock:
            return self._executions

    def __repr__(self) -> str:
        return "PreparedTemplate(%r, executions=%d, substitutions=%d)" % (
            self.name,
            self.executions,
            self.substitutions,
        )


class PreparedTemplateRegistry:
    """Prepares each template exactly once and hands out the shared instance."""

    def __init__(self):
        self._prepared: Dict[str, PreparedTemplate] = {}
        self._lock = threading.Lock()

    def prepare(self, template: QueryTemplate) -> PreparedTemplate:
        """Idempotently prepare ``template``; repeated calls reuse the work."""
        with self._lock:
            existing = self._prepared.get(template.name)
            if existing is not None:
                if existing.template.text != template.text:
                    raise ValueError(
                        "a different template is already prepared under name %r" % template.name
                    )
                return existing
            prepared = PreparedTemplate(template)
            self._prepared[template.name] = prepared
            return prepared

    def get(self, name: str) -> PreparedTemplate:
        with self._lock:
            if name not in self._prepared:
                raise KeyError("template %r has not been prepared" % name)
            return self._prepared[name]

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._prepared)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            prepared = list(self._prepared.values())
        executions = sum(template.executions for template in prepared)
        substitutions = sum(template.substitutions for template in prepared)
        return {
            "prepared templates": len(prepared),
            "prepared executions": executions,
            "prepared substitutions": substitutions,
            "reused plans": executions - substitutions,
        }

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._prepared

    def __len__(self) -> int:
        with self._lock:
            return len(self._prepared)
