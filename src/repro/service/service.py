"""The concurrent, cache-aware query service.

:class:`QueryService` is the serving layer between the benchmark harness and
the engine.  It owns

* a :class:`~repro.service.prepared.PreparedTemplateRegistry` — each
  template is parsed and translated exactly once,
* a :class:`~repro.service.plan_cache.PlanCache` — optimized plans keyed per
  ``(template, binding)`` so repeated executions skip join ordering entirely
  while parameter-dependent plan choices (E4) stay intact,
* a :class:`~repro.service.scheduler.ConcurrentScheduler` — closed-loop
  clients over the shared read-only store, and
* a :class:`~repro.service.metrics.MetricsCollector` — QPS and latency
  percentiles for the serving reports.

Executions produce exactly the :class:`~repro.bench.runner.QueryExecution`
records the sequential naive path produces — same rows, same plan, same
simulated runtime — because the runtime-model noise key depends only on
(template, binding, repetition), never on scheduling or caching.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Union

from ..engine.query_engine import (
    QueryEngine,
    QueryResult,
    UpdateResult,
    binding_cache_key,
    execution_noise_key,
)
from ..sparql.template import QueryTemplate
from ..bench.runner import QueryExecution, WorkloadResult, execution_record
from ..bench.workload import ParameterBinding, Workload, WorkloadSuite
from ..obs.analyze import DRIFT_THRESHOLD, render_analyze
from ..obs.trace import Tracer
from .metrics import MetricsCollector, ServiceMetrics
from .plan_cache import PlanCache, PlanCacheStats
from .prepared import PreparedTemplate, PreparedTemplateRegistry
from .result_cache import ResultCache
from .scheduler import ConcurrentScheduler

TemplateOrName = Union[QueryTemplate, PreparedTemplate, str]


class QueryService:
    """Serves prepared, plan-cached query templates over one engine.

    ``executor`` optionally overrides the engine's executor (``"vector"`` /
    ``"tuple"``) via :meth:`~repro.engine.query_engine.QueryEngine.with_executor`;
    ``parallelism`` optionally overrides the engine's *intra-query* morsel
    parallelism (how many worker threads one query's joins and scans fan
    out to — independent of how many closed-loop client workers call into
    the service concurrently).  Records are identical for every setting;
    only the wall clock changes.
    """

    def __init__(
        self,
        engine: QueryEngine,
        plan_cache_capacity: int = 512,
        executor: Optional[str] = None,
        parallelism: Optional[int] = None,
        result_cache_mb: float = 0.0,
        result_cache: Optional[ResultCache] = None,
        adaptive=False,
        drift_threshold: float = DRIFT_THRESHOLD,
    ):
        if executor is not None:
            engine = engine.with_executor(executor)
        if parallelism is not None:
            engine = engine.with_parallelism(parallelism)
        if result_cache is None and result_cache_mb > 0:
            result_cache = ResultCache(int(result_cache_mb * 1024 * 1024))
        self.result_cache = result_cache
        if result_cache is not None:
            engine = engine.with_result_cache(result_cache)
        self.engine = engine
        self.registry = PreparedTemplateRegistry()
        self.plan_cache = PlanCache(plan_cache_capacity)
        self.metrics = MetricsCollector()
        #: the adaptive controller when feedback-driven optimization is on
        #: (``adaptive=True``, or pass a preconfigured
        #: :class:`~repro.adaptive.AdaptiveController`), else None.
        self.adaptive = None
        if adaptive:
            from ..adaptive import AdaptiveController

            controller = (
                adaptive
                if isinstance(adaptive, AdaptiveController)
                else AdaptiveController(drift_threshold=drift_threshold)
            )
            self.engine = self.engine.with_feedback(controller.feedback)
            controller.bind(self.engine, self.plan_cache, self.metrics.registry)
            self.adaptive = controller
        # Store-state gauges read live store counters at scrape time, so they
        # also reflect mutations that bypassed this service object (another
        # engine over the same store, direct TripleStore calls).
        self.metrics.registry.gauge(
            "repro_delta_triples",
            "Triples currently held in the delta overlay (inserted + deleted)",
            callback=lambda: float(self.engine.store.delta_size),
        )
        self.metrics.registry.gauge(
            "repro_compactions_total",
            "Delta-overlay compactions folded into the base since startup",
            callback=lambda: float(self.engine.store.compactions_total),
        )
        #: client workers used by the most recent batch entry point (the
        #: closed-loop concurrency knob, as opposed to ``engine.parallelism``).
        self.last_batch_workers = 1

    @classmethod
    def from_snapshot(
        cls,
        path: str,
        plan_cache_capacity: int = 512,
        executor: Optional[str] = None,
        parallelism: Optional[int] = None,
        join_ordering: str = "dp",
        result_cache_mb: float = 0.0,
        adaptive=False,
        drift_threshold: float = DRIFT_THRESHOLD,
    ) -> "QueryService":
        """Serve straight from a store snapshot (see :mod:`repro.store.snapshot`).

        Loads the store zero-copy (memory-mapped indexes, lazy dictionary)
        and adopts the persisted statistics so the optimizer is warm from
        the first query — the production cold-start path: no dataset
        regeneration, no index re-sort, no statistics scan.
        """
        from ..store.snapshot import load_snapshot

        snapshot = load_snapshot(path)
        engine = QueryEngine(
            snapshot.store,
            join_ordering=join_ordering,
            statistics=snapshot.statistics(),
        )
        return cls(
            engine,
            plan_cache_capacity=plan_cache_capacity,
            executor=executor,
            parallelism=parallelism,
            result_cache_mb=result_cache_mb,
            adaptive=adaptive,
            drift_threshold=drift_threshold,
        )

    # -- preparation ---------------------------------------------------------------

    def prepare(self, template: TemplateOrName) -> PreparedTemplate:
        """Resolve ``template`` to its (lazily created) prepared form."""
        if isinstance(template, PreparedTemplate):
            return template
        if isinstance(template, str):
            return self.registry.get(template)
        return self.registry.prepare(template)

    # -- execution -----------------------------------------------------------------

    def execute(
        self,
        template: TemplateOrName,
        binding: ParameterBinding,
        repetition: int = 0,
    ) -> QueryResult:
        """Execute one binding through the prepared/cached fast path."""
        return self._serve(self.prepare(template), binding, repetition, in_batch=False)

    def _serve(
        self,
        prepared: PreparedTemplate,
        binding: ParameterBinding,
        repetition: int,
        in_batch: bool,
    ) -> QueryResult:
        started = time.perf_counter()
        key = (prepared.name, binding_cache_key(binding))
        plan, hit = self.plan_cache.get_or_create(
            key, lambda: self.engine.optimizer.optimize(prepared.algebra_for(binding))
        )
        tracer = None
        if self.adaptive is not None:
            # Adaptive serving traces every execution: the spans are the
            # feedback signal.  Rows, profile and simulated runtime are
            # bit-identical to untraced execution.
            tracer = Tracer(self.engine.trace_ids.new_id())
        result = self.engine.execute_plan(
            plan, execution_noise_key(prepared.name, binding, repetition), tracer=tracer
        )
        result.plan_cached = hit
        prepared.note_execution()
        if self.adaptive is not None:
            self.adaptive.observe(
                key,
                template=prepared.name,
                plan=plan,
                result=result,
                replan=lambda: self.engine.optimizer.optimize(prepared.algebra_for(binding)),
            )
        self.metrics.record_execution(
            result.runtime_ms, time.perf_counter() - started, in_batch=in_batch
        )
        return result

    def explain_analyze(
        self,
        template: TemplateOrName,
        binding: ParameterBinding,
        repetition: int = 0,
    ) -> str:
        """``explain --analyze`` through the plan cache's entry for a binding.

        Unlike :meth:`QueryEngine.explain_analyze` — which plans fresh —
        this renders the *cached* plan, so an adaptively re-optimized
        template shows its swapped plan, the corrected-vs-raw estimates
        and the "(reoptimized)" marker.
        """
        prepared = self.prepare(template)
        key = (prepared.name, binding_cache_key(binding))
        plan, _hit = self.plan_cache.get_or_create(
            key, lambda: self.engine.optimizer.optimize(prepared.algebra_for(binding))
        )
        tracer = Tracer(self.engine.trace_ids.new_id())
        result = self.engine.execute_plan(
            plan, execution_noise_key(prepared.name, binding, repetition), tracer=tracer
        )
        return render_analyze(result.trace, annotate=self.engine.executor.physical_annotation)

    def update(self, request: str) -> "UpdateResult":
        """Apply a SPARQL update request and record the mutation metrics.

        Delegates to :meth:`QueryEngine.update` (single writer lock across
        the whole request, snapshot readers unaffected) and counts the
        request, its effective triple changes, and any compaction it
        triggered on this service's registry — the same registry the HTTP
        server and the prefork pool expose and aggregate.
        """
        result = self.engine.update(request)
        self.metrics.record_update(result.inserted, result.deleted)
        if result.compacted:
            self.metrics.record_compaction(result.compaction_seconds)
        return result

    def execute_recorded(
        self,
        template: TemplateOrName,
        binding: ParameterBinding,
        repetition: int = 0,
    ) -> QueryExecution:
        """Execute one binding and return the benchmark record for it."""
        return self._record(self.prepare(template), binding, repetition, in_batch=False)

    def _record(
        self,
        prepared: PreparedTemplate,
        binding: ParameterBinding,
        repetition: int,
        in_batch: bool,
    ) -> QueryExecution:
        result = self._serve(prepared, binding, repetition, in_batch)
        return execution_record(prepared.name, binding, result, repetition)

    # -- batches -------------------------------------------------------------------

    def run_bindings(
        self,
        template: TemplateOrName,
        bindings: Sequence[ParameterBinding],
        workload_name: Optional[str] = None,
        workers: int = 1,
    ) -> WorkloadResult:
        """Run every binding (repetition = position) on ``workers`` clients.

        The record list is identical — element by element — to what the
        sequential naive path produces for the same bindings.
        """
        prepared = self.prepare(template)
        self.last_batch_workers = workers
        scheduler = ConcurrentScheduler(workers)
        started = time.perf_counter()
        records = scheduler.run(
            [
                _RecordJob(self, prepared, binding, index)
                for index, binding in enumerate(bindings)
            ]
        )
        self.metrics.record_batch(time.perf_counter() - started)
        return WorkloadResult(
            workload_name=workload_name or prepared.name,
            template_name=prepared.name,
            executions=records,
        )

    def run_workload(self, workload: Workload, workers: int = 1) -> WorkloadResult:
        return self.run_bindings(
            workload.template,
            workload.parameter_bindings(),
            workload_name=workload.name(),
            workers=workers,
        )

    def run_suite(self, suite: WorkloadSuite, workers: int = 1) -> Dict[str, WorkloadResult]:
        return {workload.name(): self.run_workload(workload, workers=workers) for workload in suite}

    # -- statistics ----------------------------------------------------------------

    def cache_stats(self) -> PlanCacheStats:
        return self.plan_cache.stats()

    def service_metrics(self) -> ServiceMetrics:
        return self.metrics.snapshot()

    def service_stats(self) -> Dict[str, float]:
        """One flat mapping with serving, plan-cache and template statistics.

        This is the shape :func:`repro.bench.reporting.service_report`
        renders.
        """
        stats: Dict[str, float] = {}
        stats.update(self.service_metrics().as_dict())
        # The two concurrency knobs, kept visibly distinct: closed-loop
        # client threads issuing queries vs. morsel workers inside one query.
        stats["client workers (closed-loop)"] = self.last_batch_workers
        stats["intra-query parallelism (morsel workers)"] = self.engine.parallelism
        # Mutation counters (SPARQL Update + delta-overlay state).
        store = self.engine.store
        stats["updates_total"] = self.metrics._updates.total()
        stats["data_version"] = store.data_version
        stats["delta_triples"] = store.delta_size
        stats["compactions_total"] = store.compactions_total
        stats.update(self.cache_stats().as_dict())
        if self.result_cache is not None:
            stats.update(self.result_cache.stats().as_dict())
        if self.adaptive is not None:
            stats.update(self.adaptive.stats())
        stats.update(self.registry.stats())
        return stats

    def __repr__(self) -> str:
        return "QueryService(templates=%d, %r)" % (len(self.registry), self.plan_cache)


class _RecordJob:
    """One scheduled execution; picklable-free plain callable for the pool."""

    __slots__ = ("service", "prepared", "binding", "repetition")

    def __init__(
        self,
        service: QueryService,
        prepared: PreparedTemplate,
        binding: ParameterBinding,
        repetition: int,
    ):
        self.service = service
        self.prepared = prepared
        self.binding = binding
        self.repetition = repetition

    def __call__(self) -> QueryExecution:
        return self.service._record(self.prepared, self.binding, self.repetition, in_batch=True)
