"""Closed-loop concurrent scheduler.

Models the client side of the paper's benchmark setup at serving scale: a
fixed number of closed-loop clients, each issuing its next query as soon as
the previous one returns, all against the shared read-only store.

Determinism is preserved by construction — every job carries its own
(template, binding, repetition) identity, so the simulated runtime of each
execution is independent of which worker ran it or in what order; only the
*wall-clock* of the whole batch changes with the worker count.  Results are
returned in submission order, which makes a concurrent run's record list
directly comparable (equal) to a sequential run's.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Sequence, TypeVar

T = TypeVar("T")


class ConcurrentScheduler:
    """Runs a batch of jobs on ``workers`` closed-loop client threads."""

    def __init__(self, workers: int = 1):
        if workers < 1:
            raise ValueError("need at least one worker, got %d" % workers)
        self.workers = workers

    def run(self, jobs: Sequence[Callable[[], T]]) -> List[T]:
        """Execute every job; the result list preserves submission order."""
        if self.workers == 1 or len(jobs) <= 1:
            return [job() for job in jobs]
        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            # map() hands each idle worker the next pending job (the closed
            # loop) while yielding results in submission order.
            return list(pool.map(_call, jobs))

    def __repr__(self) -> str:
        return "ConcurrentScheduler(workers=%d)" % self.workers


def _call(job: Callable[[], T]) -> T:
    return job()
