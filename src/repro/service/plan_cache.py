"""Parameter-aware plan cache.

Real engines amortize optimization by caching plans per prepared statement.
A single plan per template would be *wrong* for this workload: E4 shows that
different parameter bindings of the same template legitimately have
different optimal join orders.  The cache therefore keys plans by
``(template name, binding key)``, so every binding gets the plan the
optimizer would have chosen for it, and caching can never change a plan —
only skip recomputing it.

The cache is a thread-safe LRU with hit/miss/eviction counters and a
:meth:`PlanCache.distinct_plans` view over every join-tree signature ever
inserted (it survives eviction), which the E4-style experiments assert
against.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Hashable, List, Optional, Set, Tuple

from ..optimizer.plans import PlanNode, join_tree_signature

#: Cache key: (template name, binding key).
PlanKey = Tuple[str, str]


class _InflightBuild:
    """One build in progress; same-key clients wait on ``ready``."""

    __slots__ = ("ready", "plan")

    def __init__(self):
        self.ready = threading.Event()
        self.plan: Optional[PlanNode] = None


@dataclass(frozen=True)
class PlanCacheStats:
    """Snapshot of the cache counters at one point in time."""

    capacity: int
    size: int
    hits: int
    misses: int
    insertions: int
    evictions: int
    distinct_plans: int

    def lookups(self) -> int:
        return self.hits + self.misses

    def hit_rate(self) -> float:
        lookups = self.lookups()
        return self.hits / lookups if lookups else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "plan cache capacity": self.capacity,
            "plan cache size": self.size,
            "plan cache hits": self.hits,
            "plan cache misses": self.misses,
            "plan cache evictions": self.evictions,
            "plan cache hit rate": self.hit_rate(),
            "distinct cached plans": self.distinct_plans,
        }


class PlanCache:
    """Thread-safe LRU cache of optimized plans keyed per parameter binding."""

    def __init__(self, capacity: int = 256):
        if capacity < 0:
            raise ValueError("plan cache capacity must be >= 0, got %d" % capacity)
        self.capacity = capacity
        self._entries: "OrderedDict[PlanKey, PlanNode]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._insertions = 0
        self._evictions = 0
        #: every join-tree signature ever inserted — eviction must not hide
        #: plan diversity from the experiments.
        self._signatures: Set[str] = set()
        #: key -> in-flight build other clients of the same key wait on
        self._inflight: Dict[PlanKey, "_InflightBuild"] = {}

    # -- core operations ---------------------------------------------------------

    def lookup(self, key: PlanKey) -> Optional[PlanNode]:
        """Return the cached plan for ``key`` (refreshing recency) or None."""
        with self._lock:
            plan = self._entries.get(key)
            if plan is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return plan

    def insert(self, key: PlanKey, plan: PlanNode) -> PlanNode:
        """Insert ``plan`` under ``key``; return the canonical cached plan.

        If another thread inserted the same key first, the existing plan wins
        (both were produced by the same deterministic optimizer, so they are
        structurally identical).
        """
        signature = join_tree_signature(plan)
        with self._lock:
            self._signatures.add(signature)
            existing = self._entries.get(key)
            if existing is not None:
                self._entries.move_to_end(key)
                return existing
            self._insertions += 1
            if self.capacity == 0:
                return plan
            self._entries[key] = plan
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1
            return plan

    def get_or_create(self, key: PlanKey, factory: Callable[[], PlanNode]) -> Tuple[PlanNode, bool]:
        """Return ``(plan, hit)``; on a miss, build the plan with ``factory``.

        The factory runs outside the cache lock so concurrent clients can
        optimize *different* templates in parallel, while concurrent
        requests for the *same* key coalesce onto one build: exactly one
        client optimizes, the others block on the in-flight build and count
        as cache hits — which keeps hit accounting deterministic no matter
        how the scheduler interleaves clients.  With caching disabled
        (capacity 0) every caller builds its own plan.
        """
        while True:
            wait_for: Optional[_InflightBuild] = None
            with self._lock:
                plan = self._entries.get(key)
                if plan is not None:
                    self._entries.move_to_end(key)
                    self._hits += 1
                    return plan, True
                if self.capacity > 0:
                    wait_for = self._inflight.get(key)
                    if wait_for is None:
                        self._inflight[key] = _InflightBuild()
                if wait_for is None:
                    self._misses += 1
                    break  # we are the builder (or caching is disabled)
            wait_for.ready.wait()
            if wait_for.plan is not None:
                with self._lock:
                    self._hits += 1
                return wait_for.plan, True
            # The build we waited on failed; retry from the top.

        try:
            plan = self.insert(key, factory())
        except BaseException:
            self._finish_build(key, None)
            raise
        self._finish_build(key, plan)
        return plan, False

    def _finish_build(self, key: PlanKey, plan: Optional[PlanNode]) -> None:
        """Publish the outcome of an in-flight build and wake the waiters."""
        if self.capacity == 0:
            return
        with self._lock:
            build = self._inflight.pop(key, None)
        if build is not None:
            build.plan = plan
            build.ready.set()

    def replace(self, key: PlanKey, plan: PlanNode) -> PlanNode:
        """Overwrite the entry for ``key`` with ``plan`` (re-optimization).

        Unlike :meth:`insert` — where the first plan wins because every
        racer built the same deterministic plan — this is the adaptive
        re-optimizer's swap path: the *new* plan wins, replacing whatever
        the key held.  Counts as an insertion when the key was absent;
        with caching disabled (capacity 0) there is nothing to swap and
        the plan is returned unchanged.
        """
        signature = join_tree_signature(plan)
        with self._lock:
            self._signatures.add(signature)
            if self.capacity == 0:
                return plan
            if key not in self._entries:
                self._insertions += 1
            self._entries[key] = plan
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1
            return plan

    def peek(self, key: PlanKey) -> Optional[PlanNode]:
        """Return the cached plan without touching recency or counters."""
        with self._lock:
            return self._entries.get(key)

    # -- views -------------------------------------------------------------------

    def distinct_plans(self) -> int:
        """Number of distinct join-tree signatures ever cached."""
        with self._lock:
            return len(self._signatures)

    def plan_signatures(self) -> Set[str]:
        """A copy of every join-tree signature ever cached."""
        with self._lock:
            return set(self._signatures)

    def keys(self) -> List[PlanKey]:
        """Currently cached keys in LRU order (oldest first)."""
        with self._lock:
            return list(self._entries)

    def stats(self) -> PlanCacheStats:
        with self._lock:
            return PlanCacheStats(
                capacity=self.capacity,
                size=len(self._entries),
                hits=self._hits,
                misses=self._misses,
                insertions=self._insertions,
                evictions=self._evictions,
                distinct_plans=len(self._signatures),
            )

    def clear(self) -> None:
        """Drop every entry and counter (signatures included)."""
        with self._lock:
            self._entries.clear()
            self._signatures.clear()
            self._hits = self._misses = self._insertions = self._evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def __repr__(self) -> str:
        stats = self.stats()
        return "PlanCache(size=%d/%d, hits=%d, misses=%d, evictions=%d)" % (
            stats.size,
            stats.capacity,
            stats.hits,
            stats.misses,
            stats.evictions,
        )
