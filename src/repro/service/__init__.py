"""Concurrent query service: prepared templates, plan cache, scheduler, metrics.

This is the serving layer the ROADMAP's production north-star asks for: the
benchmark harness (and any downstream user) executes templates through a
:class:`QueryService`, which amortizes parsing/translation via prepared
templates, skips repeated join ordering via a parameter-aware LRU plan
cache, runs closed-loop concurrent clients over the shared read-only store,
and reports QPS / latency percentiles / cache hit rates.
"""

from .metrics import MetricsCollector, ServiceMetrics
from .plan_cache import PlanCache, PlanCacheStats
from .prepared import PreparedTemplate, PreparedTemplateRegistry, substitute_algebra
from .result_cache import (
    MaterializedView,
    MaterializedViewRegistry,
    ResultCache,
    ResultCacheStats,
)
from .scheduler import ConcurrentScheduler
from .service import QueryService

__all__ = [
    "ConcurrentScheduler",
    "MaterializedView",
    "MaterializedViewRegistry",
    "MetricsCollector",
    "PlanCache",
    "PlanCacheStats",
    "PreparedTemplate",
    "PreparedTemplateRegistry",
    "QueryService",
    "ResultCache",
    "ResultCacheStats",
    "ServiceMetrics",
    "substitute_algebra",
]
